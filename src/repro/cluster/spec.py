"""Hardware specifications and calibrated compute profiles.

Per-sample training latencies are calibrated against the paper's
measurements (§2.3, Figure 4a): training VGG-11 on CIFAR-10 takes 29.1 h
on one Snapdragon 865 CPU and ~7.5–10 h on its NPU; ResNet-18 takes
233 h / 36 h.  Latencies for models the paper does not time directly are
extrapolated by FLOP count using the same throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProcessorSpec", "SoCSpec", "GpuSpec", "ModelProfile",
           "SOC_REGISTRY", "GPU_REGISTRY", "MODEL_PROFILES", "model_profile"]


@dataclass(frozen=True)
class ProcessorSpec:
    """One on-chip processor (mobile CPU or NPU)."""

    name: str
    #: sustained training throughput, FLOP/s (fwd+bwd accounted by caller)
    flops: float
    #: power when busy training, watts
    busy_watts: float
    #: native training precision
    precision: str


@dataclass(frozen=True)
class SoCSpec:
    """A mobile system-on-chip (Figure 2d)."""

    name: str
    cpu: ProcessorSpec
    npu: ProcessorSpec
    dram_gb: int
    idle_watts: float
    #: NIC bandwidth from the SoC to its PCB, bits/s
    nic_bps: float
    #: effective DRAM bandwidth for optimizer updates, bytes/s
    mem_bps: float = 12e9

    def processor(self, which: str) -> ProcessorSpec:
        if which == "cpu":
            return self.cpu
        if which == "npu":
            return self.npu
        raise ValueError(f"unknown processor {which!r}")


@dataclass(frozen=True)
class GpuSpec:
    """A datacenter GPU, for the Figure 11 comparison."""

    name: str
    flops: float
    busy_watts: float


@dataclass(frozen=True)
class ModelProfile:
    """Per-model compute/communication footprint at full width.

    ``flops_per_sample`` counts one forward+backward pass; gradient and
    weight payloads are ``4 * params`` bytes in FP32 and ``params`` bytes
    in INT8.
    """

    name: str
    params: int
    flops_per_sample: float
    #: typical per-sample activation size at a pipeline stage boundary
    act_bytes_per_sample: float = 0.0
    #: gradient tensors synchronised per step (drives collective startup
    #: cost: each tensor pays a per-hop launch overhead)
    num_tensors: int = 30
    #: measured per-sample training latencies on the Snapdragon 865
    #: (derived from Figure 4a); None -> extrapolate from FLOPs
    t_cpu_sample_s: float | None = None
    t_npu_sample_s: float | None = None

    def payload_bytes(self, precision: str = "fp32") -> int:
        bytes_per = {"fp32": 4, "fp16": 2, "int8": 1}[precision]
        return self.params * bytes_per


# ---------------------------------------------------------------------------
# Calibration.
#
# Figure 4a measures convergence training time on one Snapdragon 865:
#   VGG-11:    CPU-FP32 29.1 h, NPU-INT8 ~7.5 h
#   ResNet-18: CPU-FP32 233 h,  NPU-INT8 ~36 h
# At a ~15-epoch convergence budget on CIFAR-10 (750k sample-steps) that
# back-solves to ~140 ms/sample (VGG-11) and ~1.1 s/sample (ResNet-18) on
# the CPU — i.e. an effective ~6 GFLOP/s sustained mobile-CPU training
# throughput, with the NPU ~4x faster at INT8.  These measured latencies
# are pinned per model below; unmeasured models use the throughputs.
# ---------------------------------------------------------------------------

_SD865_CPU = ProcessorSpec("kryo585", flops=5.9e9, busy_watts=3.5,
                           precision="fp32")
_SD865_NPU = ProcessorSpec("hexagon698", flops=23e9, busy_watts=1.6,
                           precision="int8")
_SD8GEN1_CPU = ProcessorSpec("kryo780", flops=8.9e9, busy_watts=4.5,
                             precision="fp32")
_SD8GEN1_NPU = ProcessorSpec("hexagon8gen1", flops=92e9, busy_watts=2.2,
                             precision="int8")

SOC_REGISTRY: dict[str, SoCSpec] = {
    "sd865": SoCSpec("sd865", _SD865_CPU, _SD865_NPU, dram_gb=12,
                     idle_watts=0.6, nic_bps=1e9),
    "sd8gen1": SoCSpec("sd8gen1", _SD8GEN1_CPU, _SD8GEN1_NPU, dram_gb=12,
                       idle_watts=0.9, nic_bps=1e9),
}

# Peak FP32 throughput; CIFAR-scale models only sustain a small fraction
# of it (see repro.harness.gpu.GPU_EFFICIENCY), which is the paper's §4.4
# point (2).
GPU_REGISTRY: dict[str, GpuSpec] = {
    "v100": GpuSpec("v100", flops=15.7e12, busy_watts=300.0),
    "a100": GpuSpec("a100", flops=19.5e12, busy_watts=400.0),
}

# fwd+bwd FLOPs per sample at the native input size (fwd x3), and full-width
# parameter counts matching this repo's model zoo at width=1.0.
MODEL_PROFILES: dict[str, ModelProfile] = {
    "lenet5": ModelProfile("lenet5", params=61_706, flops_per_sample=1.3e7,
                           act_bytes_per_sample=2.0e4, num_tensors=10),
    "vgg11": ModelProfile("vgg11", params=9_228_362,
                          flops_per_sample=8.2e8,
                          act_bytes_per_sample=2.6e5, num_tensors=26,
                          t_cpu_sample_s=0.140, t_npu_sample_s=0.036),
    "resnet18": ModelProfile("resnet18", params=11_173_962,
                             flops_per_sample=1.7e9,
                             act_bytes_per_sample=2.6e5, num_tensors=62,
                             t_cpu_sample_s=1.12, t_npu_sample_s=0.173),
    "resnet50": ModelProfile("resnet50", params=23_520_842,
                             flops_per_sample=3.9e9,
                             act_bytes_per_sample=1.0e6, num_tensors=161),
    "mobilenet_v1": ModelProfile("mobilenet_v1", params=3_217_226,
                                 flops_per_sample=1.4e8,
                                 act_bytes_per_sample=2.6e5,
                                 num_tensors=83),
    # §5 future-work model: a ViT-tiny-class transformer
    "vit_tiny": ModelProfile("vit_tiny", params=545_930,
                             flops_per_sample=2.0e8,
                             act_bytes_per_sample=3.3e4,
                             num_tensors=55),
}


def model_profile(name: str) -> ModelProfile:
    try:
        return MODEL_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_PROFILES))
        raise ValueError(f"unknown model {name!r}; known: {known}") from None
