"""Elastic scheduling invariants: determinism, floors, warm resume."""

import pytest

from repro.cluster import Session
from repro.jobs import ElasticScheduler, JobAdmissionError
from repro.telemetry import Telemetry, write_trace

from .conftest import busy_all, make_job, make_scheduler


def record_allocations(monkeypatch):
    """Spy on every applied allocation: (job id, SoC ids) tuples."""
    seen = []
    original = ElasticScheduler._apply_allocation

    def spy(self, assigned, hour):
        for job_id in sorted(assigned):
            seen.append((job_id, list(assigned[job_id])))
        return original(self, assigned, hour)

    monkeypatch.setattr(ElasticScheduler, "_apply_allocation", spy)
    return seen


class TestConcurrentJobs:
    def test_three_jobs_share_the_cluster(self, jobs_topology,
                                          config_factory):
        scheduler = make_scheduler(jobs_topology, config_factory)
        for i in range(3):
            scheduler.submit(make_job(f"j{i}", priority=i + 1,
                                      submit_hour=0.25 * i))
        report = scheduler.run()
        assert report.completed == ["j0", "j1", "j2"]
        for record in report.jobs.values():
            assert record.epochs_done == record.job.epochs
            assert record.final_accuracy > 0.0
        assert report.used_soc_hours > 0
        assert report.utilisation <= 1.0 + 1e-9

    def test_structural_rejection_raises(self, jobs_topology,
                                         config_factory):
        scheduler = make_scheduler(jobs_topology, config_factory)
        with pytest.raises(JobAdmissionError):
            scheduler.submit(make_job("big", min_socs=64, max_socs=64))


class TestMinSocsInvariant:
    def test_no_allocation_below_floor(self, jobs_topology, config_factory,
                                       monkeypatch):
        allocations = record_allocations(monkeypatch)
        sessions = [Session(s, 1.0, 1.0) for s in range(5)]  # squeeze to 3
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions)
        floors = {}
        for i in range(3):
            job = make_job(f"j{i}", min_socs=2, max_socs=6, epochs=3)
            floors[job.id] = job.min_socs
            scheduler.submit(job)
        report = scheduler.run()
        assert allocations
        for job_id, socs in allocations:
            assert len(socs) >= floors[job_id]
            assert len(socs) <= 6
        assert report.completed == ["j0", "j1", "j2"]

    def test_max_socs_caps_growth(self, jobs_topology, config_factory,
                                  monkeypatch):
        allocations = record_allocations(monkeypatch)
        scheduler = make_scheduler(jobs_topology, config_factory)
        scheduler.submit(make_job("solo", min_socs=2, max_socs=4))
        scheduler.run()
        assert allocations
        assert all(len(socs) == 4 for _, socs in allocations)


class TestFairShare:
    def test_equal_priorities_split_surplus(self, jobs_topology,
                                            config_factory, monkeypatch):
        allocations = record_allocations(monkeypatch)
        scheduler = make_scheduler(jobs_topology, config_factory)
        scheduler.submit(make_job("a", min_socs=2, max_socs=8))
        scheduler.submit(make_job("b", min_socs=2, max_socs=8))
        scheduler.run()
        first_round = dict(allocations[:2])
        assert len(first_round["a"]) == 4
        assert len(first_round["b"]) == 4

    def test_priority_weighted_surplus(self, jobs_topology, config_factory,
                                       monkeypatch):
        allocations = record_allocations(monkeypatch)
        scheduler = make_scheduler(jobs_topology, config_factory)
        scheduler.submit(make_job("lo", priority=1, min_socs=2, max_socs=8))
        scheduler.submit(make_job("hi", priority=2, min_socs=2, max_socs=8))
        scheduler.run()
        first_round = dict(allocations[:2])
        assert len(first_round["hi"]) > len(first_round["lo"])
        assert len(first_round["hi"]) + len(first_round["lo"]) == 8


class TestZeroIdleCapacity:
    def test_job_stays_queued_until_socs_free(self, jobs_topology,
                                              config_factory):
        sessions = busy_all(jobs_topology, 0.0, 2.0)
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions)
        scheduler.submit(make_job("waiter"))
        report = scheduler.run()
        record = report.jobs["waiter"]
        assert record.status == "completed"
        assert record.start_hour == pytest.approx(2.0)
        assert record.queue_wait_hours == pytest.approx(2.0)

    def test_never_any_idle_means_unfinished_and_no_groups(
            self, jobs_topology, config_factory):
        sessions = busy_all(jobs_topology, 0.0, 24.0)
        telemetry = Telemetry.active()
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions, horizon_hours=2.0,
                                   telemetry=telemetry)
        scheduler.submit(make_job("starved"))
        report = scheduler.run()
        record = report.jobs["starved"]
        assert record.status == "unfinished"
        assert record.epochs_done == 0
        assert record.start_hour is None
        # no empty logical group was ever planned: no job spans — just
        # the synthetic queue span that lets the analyzer see starvation
        assert not [r for r in telemetry.tracer.records
                    if r.kind == "job"]
        queued = [r for r in telemetry.tracer.records if r.kind == "queue"]
        assert [q.name for q in queued] == ["starved:starved"]
        assert queued[0].dur_s == 2.0 * 3600.0      # the whole horizon
        assert report.used_soc_hours == 0.0


class TestPreemptionAndResume:
    def test_preempted_job_resumes_from_latest_checkpoint(
            self, jobs_topology, config_factory):
        sessions = busy_all(jobs_topology, 0.75, 1.0)
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions)
        scheduler.submit(make_job("evicted", epochs=5))
        report = scheduler.run()
        record = report.jobs["evicted"]
        execution = scheduler._execs["evicted"]
        assert record.preemptions >= 1
        assert record.status == "completed"
        assert record.epochs_done == 5
        # resumed from the *latest* checkpoint: every epoch ran exactly
        # once, and the final checkpoint is the final epoch
        assert len(execution.history) == 5
        assert execution.last_checkpoint.epoch == 5
        assert execution.last_checkpoint.accuracy_history == \
            tuple(execution.history)

    def test_higher_priority_preempts_running_job(self, jobs_topology,
                                                  config_factory):
        scheduler = make_scheduler(jobs_topology, config_factory)
        scheduler.submit(make_job("lo", priority=1, min_socs=8, max_socs=8,
                                  epochs=4))
        scheduler.submit(make_job("hi", priority=5, min_socs=8, max_socs=8,
                                  epochs=2, submit_hour=0.5))
        report = scheduler.run()
        lo, hi = report.jobs["lo"], report.jobs["hi"]
        assert lo.preemptions >= 1
        assert hi.preemptions == 0
        assert lo.status == "completed" and hi.status == "completed"
        assert hi.finish_hour < lo.finish_hour


class TestElasticResize:
    def test_shrinks_and_regrows_with_load(self, jobs_topology,
                                           config_factory, monkeypatch):
        allocations = record_allocations(monkeypatch)
        sessions = [Session(s, 0.75, 1.0) for s in range(4, 8)]
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions)
        scheduler.submit(make_job("elastic", min_socs=2, max_socs=8,
                                  epochs=8))
        report = scheduler.run()
        record = report.jobs["elastic"]
        assert record.status == "completed"
        assert record.resizes >= 2
        sizes = [len(socs) for _, socs in allocations]
        assert 8 in sizes and 4 in sizes

    def test_resize_keeps_sticky_soc_ids(self, jobs_topology,
                                         config_factory, monkeypatch):
        allocations = record_allocations(monkeypatch)
        sessions = [Session(s, 0.75, 1.0) for s in range(4, 8)]
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions)
        scheduler.submit(make_job("sticky", min_socs=2, max_socs=8,
                                  epochs=8))
        scheduler.run()
        shrunk = next(socs for _, socs in allocations if len(socs) == 4)
        assert shrunk == [0, 1, 2, 3]   # kept the surviving half


class TestStaticBaseline:
    def test_requires_window(self, jobs_topology, config_factory):
        with pytest.raises(ValueError, match="window"):
            make_scheduler(jobs_topology, config_factory, elastic=False)

    def test_jobs_gated_to_window(self, jobs_topology, config_factory,
                                  monkeypatch):
        allocations = record_allocations(monkeypatch)
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   elastic=False, window=(1.0, 2.0))
        scheduler.submit(make_job("windowed", min_socs=4, max_socs=8))
        report = scheduler.run()
        record = report.jobs["windowed"]
        assert record.start_hour == pytest.approx(1.0)
        # static mode never grows past the floor
        assert all(len(socs) == 4 for _, socs in allocations)

    def test_window_wraps_midnight(self, jobs_topology, config_factory):
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   elastic=False, window=(23.0, 2.0))
        assert scheduler._in_window(23.5)
        assert scheduler._in_window(0.5)
        assert not scheduler._in_window(12.0)


class TestDeadlines:
    def test_late_finish_is_missed(self, jobs_topology, config_factory):
        sessions = busy_all(jobs_topology, 0.0, 1.0)
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions)
        scheduler.submit(make_job("urgent", deadline_hours=0.5))
        report = scheduler.run()
        assert report.jobs["urgent"].status == "missed"
        assert report.jobs["urgent"].epochs_done == 2

    def test_on_time_finish_is_completed(self, jobs_topology,
                                         config_factory):
        scheduler = make_scheduler(jobs_topology, config_factory)
        scheduler.submit(make_job("calm", deadline_hours=10.0))
        report = scheduler.run()
        assert report.jobs["calm"].status == "completed"


class TestDeterminism:
    def _run_once(self, jobs_topology, config_factory, tmp_path, tag):
        telemetry = Telemetry.active()
        sessions = [Session(s, 0.75, 1.0) for s in range(4, 8)]
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions, telemetry=telemetry)
        scheduler.submit(make_job("a", priority=2, epochs=3))
        scheduler.submit(make_job("b", priority=1, epochs=3,
                                  submit_hour=0.5))
        report = scheduler.run()
        metrics_path = tmp_path / f"metrics-{tag}.jsonl"
        trace_path = tmp_path / f"trace-{tag}.jsonl"
        telemetry.metrics.write_jsonl(metrics_path)
        write_trace(telemetry.tracer, trace_path, fmt="jsonl")
        return (report.to_dict(), metrics_path.read_bytes(),
                trace_path.read_bytes())

    def test_same_inputs_byte_identical_outputs(self, jobs_topology,
                                                config_factory, tmp_path):
        first = self._run_once(jobs_topology, config_factory, tmp_path, "a")
        second = self._run_once(jobs_topology, config_factory, tmp_path, "b")
        assert first[0] == second[0]     # report dict
        assert first[1] == second[1]     # metrics JSONL bytes
        assert first[2] == second[2]     # trace JSONL bytes
