"""Group-size selection: Eq. 1 and the first-epoch heuristic."""

import pytest

from repro.core import GroupSizeSelector, epoch_time_model


class TestEpochTimeModel:
    def test_eq1_value(self):
        # NUM/(N*BSg) * (T*N/M + Tsync) with easy numbers
        t = epoch_time_model(num_samples=1000, num_groups=2, group_batch=10,
                             t_train_group_batch=4.0, t_sync=1.0, num_socs=8)
        assert t == pytest.approx(50 * (4.0 * 2 / 8 + 1.0))

    def test_monotone_decreasing_in_groups(self):
        times = [epoch_time_model(50_000, n, 64, 8.0, 0.6, 32)
                 for n in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            epoch_time_model(0, 1, 1, 1.0, 1.0, 1)


class TestSelector:
    def test_halts_at_first_big_drop(self):
        profile = {1: 0.70, 2: 0.68, 4: 0.66, 8: 0.40, 16: 0.20}
        assert GroupSizeSelector(drop_threshold=0.15).select(profile) == 4

    def test_keeps_going_with_small_drops(self):
        profile = {1: 0.70, 2: 0.69, 4: 0.68, 8: 0.67}
        assert GroupSizeSelector(drop_threshold=0.15).select(profile) == 8

    def test_single_candidate(self):
        assert GroupSizeSelector().select({4: 0.5}) == 4

    def test_empty_profile_raises(self):
        with pytest.raises(ValueError):
            GroupSizeSelector().select({})

    def test_rising_profile_never_halts(self):
        profile = {1: 0.3, 2: 0.4, 4: 0.5}
        assert GroupSizeSelector().select(profile) == 4

    def test_drop_relative_to_best_seen(self):
        # rises to 0.8 then 0.65: that is >15% below the best seen
        profile = {1: 0.5, 2: 0.8, 4: 0.65}
        assert GroupSizeSelector(drop_threshold=0.15).select(profile) == 2

    def test_select_with_time_prefers_larger_admissible(self, quick_config):
        selector = GroupSizeSelector()
        profile = {1: 0.7, 2: 0.69, 4: 0.68, 8: 0.30}
        chosen = selector.select_with_time(profile, quick_config)
        assert chosen == 4  # Eq.1 is monotone, largest admissible wins
