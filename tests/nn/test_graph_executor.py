"""Trace-once/replay-many graph executor: bit-identity and fallbacks.

The executor's contract is absolute: a replayed step computes the
*exact same bits* as the eager tape interpreter — same loss floats,
same weights, same optimizer momentum — or it does not run at all
(automatic fallback to eager).  These tests pin the contract on every
registry model and exercise each fallback edge: shape changes,
program-cache overflow, unsupported ops, and storage rebinding
(what ``reform_groups`` does to a survivor model mid-run).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import graph as graph_mod
from repro.nn.graph import GraphExecutor, attach_graph_executor
from repro.nn.models.registry import MODEL_REGISTRY, build_model
from repro.nn.optim import SGD

#: smallest geometry at which every registry model still builds
SPECS = {
    "lenet5": dict(in_channels=1, image_size=16, width=0.5),
    "vgg11": dict(in_channels=3, image_size=16, width=0.25),
    "resnet18": dict(in_channels=3, image_size=16, width=0.25),
    "resnet50": dict(in_channels=3, image_size=16, width=0.25),
    "mobilenet_v1": dict(in_channels=3, image_size=16, width=0.25),
    "vit_tiny": dict(in_channels=3, image_size=16, width=0.5),
}
BATCH = 8


def make(name, graph=False, **executor_kwargs):
    kwargs = SPECS[name]
    model = build_model(name, seed=3, num_classes=10, **kwargs)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9,
                    weight_decay=1e-4, flat=model.flatten_parameters())
    executor = None
    if graph:
        executor = attach_graph_executor(model, **executor_kwargs)
        assert isinstance(executor, GraphExecutor)
    return model, optimizer, executor


def batches(name, steps, batch=BATCH, seed=99):
    kwargs = SPECS[name]
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x = rng.standard_normal(
            (batch, kwargs["in_channels"], kwargs["image_size"],
             kwargs["image_size"])).astype(np.float32)
        y = rng.integers(0, 10, size=batch)
        yield x, y


def train(name, steps=4, graph=False, batch=BATCH, **executor_kwargs):
    model, optimizer, executor = make(name, graph=graph, **executor_kwargs)
    losses = []
    for x, y in batches(name, steps, batch=batch):
        if executor is not None:
            losses.append(executor.step(optimizer, x, y))
        else:
            losses.append(graph_mod._eager_step(model, optimizer, x, y))
    return model, optimizer, executor, losses


def assert_states_equal(a, b):
    __tracer__ = "hide"
    assert list(a) == list(b)
    for key in a:
        left, right = a[key], b[key]
        if isinstance(left, list):           # SGD velocity buffers
            assert len(left) == len(right), key
            for i, (x, y) in enumerate(zip(left, right)):
                assert np.array_equal(x, y), (key, i)
        else:
            assert np.array_equal(left, right), key


def test_registry_is_covered():
    assert set(SPECS) == set(MODEL_REGISTRY)


@pytest.mark.parametrize("name", sorted(SPECS))
def test_replay_is_bit_identical_to_eager(name):
    """Loss floats, weights, buffers and momentum all match exactly."""
    eager_model, eager_opt, _, eager_losses = train(name)
    graph_model, graph_opt, executor, graph_losses = train(name, graph=True)
    assert graph_losses == eager_losses
    assert_states_equal(eager_model.state_dict(), graph_model.state_dict())
    assert_states_equal(eager_opt.state_dict(), graph_opt.state_dict())
    # one capture, the rest replays, no fallbacks
    assert executor.stats["captures"] == 1
    assert executor.stats["replays"] == 3
    assert executor.stats["fallbacks"] == 0
    assert executor.stats["eager_steps"] == 0


@pytest.mark.parametrize("name", sorted(SPECS))
def test_arena_packs_tighter_than_dedicated_buffers(name):
    _, _, executor, _ = train(name, steps=1, graph=True)
    (stats,) = executor.program_stats()
    assert 0 < stats["arena_bytes"] < stats["naive_bytes"]


def test_elementwise_fusion_is_bit_identical():
    """fuse=False must compute the same bits (fusion only aliases
    buffers, never changes arithmetic); the ViT actually fuses."""
    _, _, fused_exec, fused_losses = train("vit_tiny", graph=True)
    unfused_model, unfused_opt, unfused_exec, unfused_losses = train(
        "vit_tiny", graph=True, fuse=False)
    assert fused_losses == unfused_losses
    (fused_stats,) = fused_exec.program_stats()
    (unfused_stats,) = unfused_exec.program_stats()
    assert fused_stats["fused_elementwise"] > 0
    assert unfused_stats["fused_elementwise"] == 0


def test_shape_change_captures_a_second_program():
    model, optimizer, executor = make("lenet5", graph=True)
    for x, y in batches("lenet5", 2, batch=8):
        loss_b8 = executor.step(optimizer, x, y)
    for x, y in batches("lenet5", 2, batch=4):
        loss_b4 = executor.step(optimizer, x, y)
    assert executor.stats["captures"] == 2
    assert executor.stats["replays"] == 2
    assert len(executor.program_stats()) == 2
    assert loss_b8 != loss_b4     # distinct programs really ran


def test_program_cache_overflow_falls_back_to_eager():
    """Past ``max_programs`` shapes, new shapes train eagerly — still
    correct, never cached."""
    model, optimizer, executor = make("lenet5", graph=True, max_programs=1)
    for x, y in batches("lenet5", 2, batch=8):
        executor.step(optimizer, x, y)
    for x, y in batches("lenet5", 3, batch=4):
        executor.step(optimizer, x, y)
    assert executor.stats["captures"] == 1
    assert executor.stats["replays"] == 1
    assert executor.stats["eager_steps"] == 3
    assert len(executor.program_stats()) == 1
    # the overflow steps still trained: compare against an all-eager twin
    twin_model, twin_opt, _ = make("lenet5")
    for x, y in batches("lenet5", 2, batch=8):
        graph_mod._eager_step(twin_model, twin_opt, x, y)
    for x, y in batches("lenet5", 3, batch=4):
        graph_mod._eager_step(twin_model, twin_opt, x, y)
    assert_states_equal(twin_model.state_dict(), model.state_dict())


def test_unsupported_op_falls_back_permanently(monkeypatch):
    """An op outside the capture vocabulary marks the shape
    permanently eager; training is unaffected."""
    monkeypatch.setattr(graph_mod, "_SUPPORTED",
                        graph_mod._SUPPORTED - {"relu"})
    model, optimizer, executor, losses = train("lenet5", graph=True)
    assert executor.stats["captures"] == 0
    assert executor.stats["fallbacks"] == 1  # the failed capture attempt
    assert executor.stats["eager_steps"] == 3
    assert executor.program_stats() == []
    _, _, _, eager_losses = train("lenet5")
    assert losses == eager_losses


def test_storage_rebinding_invalidates_programs():
    """What ``reform_groups`` does: parameters get fresh storage, the
    flat buffer is no longer intact, captured programs must die."""
    model, optimizer, executor = make("lenet5", graph=True)
    for x, y in batches("lenet5", 2):
        executor.step(optimizer, x, y)
    assert executor.stats["replays"] == 1
    for param in model.parameters():
        param.data = param.data.copy()       # rebind, values unchanged
    (x, y), = batches("lenet5", 1)
    executor.step(optimizer, x, y)
    assert executor.stats["fallbacks"] >= 1
    assert executor.program_stats() == []    # cache cleared


def test_attach_is_idempotent_and_detach_restores_eager():
    model, _, executor = make("lenet5", graph=True)
    assert attach_graph_executor(model) is executor
    assert model.enable_graph_executor() is executor
    model.disable_graph_executor()
    assert getattr(model, "_graph_exec", None) is None


def test_fp32_train_step_dispatches_to_executor():
    import repro.core  # noqa: F401 -- resolves the core<->distributed cycle
    from repro.distributed.base import fp32_train_step

    eager_model, eager_opt, _ = make("lenet5")
    graph_model, graph_opt, executor = make("lenet5", graph=True)
    for x, y in batches("lenet5", 3):
        eager_loss = fp32_train_step(eager_model, eager_opt, x, y)
        graph_loss = fp32_train_step(graph_model, graph_opt, x, y)
        assert eager_loss == graph_loss
    assert executor.stats["captures"] == 1
    assert executor.stats["replays"] == 2
    assert_states_equal(eager_model.state_dict(), graph_model.state_dict())
