"""Energy accounting for training runs (Figures 9 and 11).

Energy = Σ processor-busy-time × busy power + idle time × idle power.
The model charges communication time at idle power plus a small NIC
adder — mobile NICs draw well under a watt — which reproduces the
paper's observation that long synchronisation both slows training *and*
wastes energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .spec import GpuSpec, SoCSpec

__all__ = ["EnergyModel", "EnergyReport"]

#: extra draw while a SoC's NIC is actively transferring, watts
_NIC_ACTIVE_WATTS = 0.7


@dataclass
class EnergyReport:
    """Accumulated joules, broken down by source."""

    cpu_j: float = 0.0
    npu_j: float = 0.0
    network_j: float = 0.0
    idle_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.cpu_j + self.npu_j + self.network_j + self.idle_j

    @property
    def total_kj(self) -> float:
        return self.total_j / 1e3

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(self.cpu_j + other.cpu_j,
                            self.npu_j + other.npu_j,
                            self.network_j + other.network_j,
                            self.idle_j + other.idle_j)


@dataclass
class EnergyModel:
    """Charges a fleet of SoCs (or a GPU) for each training phase."""

    soc: SoCSpec
    report: EnergyReport = field(default_factory=EnergyReport)

    def charge_compute(self, seconds: float, num_socs: int,
                       cpu_fraction: float = 1.0) -> None:
        """Compute phase: ``cpu_fraction`` of time on CPU, rest on NPU.

        Both processors run concurrently during mixed-precision steps, so
        the caller passes the share of *processor-seconds*, not wall time.
        """
        if seconds < 0 or num_socs < 0:
            raise ValueError("negative charge")
        cpu_s = seconds * cpu_fraction * num_socs
        npu_s = seconds * (1.0 - cpu_fraction) * num_socs
        self.report.cpu_j += cpu_s * self.soc.cpu.busy_watts
        self.report.npu_j += npu_s * self.soc.npu.busy_watts
        base = seconds * num_socs * self.soc.idle_watts
        self.report.idle_j += base

    def charge_mixed(self, cpu_busy_s: float, npu_busy_s: float,
                     wall_s: float, num_socs: int) -> None:
        """Mixed-precision step: both processors busy for their own spans.

        ``cpu_busy_s``/``npu_busy_s`` are per-SoC busy times inside a
        wall-clock window of ``wall_s`` (the slower processor defines it).
        """
        if min(cpu_busy_s, npu_busy_s, wall_s, num_socs) < 0:
            raise ValueError("negative charge")
        self.report.cpu_j += cpu_busy_s * num_socs * self.soc.cpu.busy_watts
        self.report.npu_j += npu_busy_s * num_socs * self.soc.npu.busy_watts
        self.report.idle_j += wall_s * num_socs * self.soc.idle_watts

    def charge_network(self, seconds: float, num_socs: int,
                       include_idle: bool = True) -> None:
        """NIC-active draw; ``include_idle=False`` for sync that is
        overlapped under compute (the idle floor is already charged)."""
        if seconds < 0 or num_socs < 0:
            raise ValueError("negative charge")
        self.report.network_j += seconds * num_socs * _NIC_ACTIVE_WATTS
        if include_idle:
            self.report.idle_j += seconds * num_socs * self.soc.idle_watts

    def charge_idle(self, seconds: float, num_socs: int) -> None:
        if seconds < 0 or num_socs < 0:
            raise ValueError("negative charge")
        self.report.idle_j += seconds * num_socs * self.soc.idle_watts

    @staticmethod
    def gpu_energy(gpu: GpuSpec, seconds: float) -> EnergyReport:
        """Whole-GPU draw for a training run of ``seconds``."""
        report = EnergyReport()
        report.cpu_j = seconds * gpu.busy_watts
        return report
