"""Training-job specifications for the multi-tenant scheduler.

A :class:`TrainingJob` is the unit the :mod:`repro.jobs` subsystem
schedules: one workload to train for a number of epochs, with a
priority, an elastic SoC range (``min_socs``..``max_socs``) and an
optional completion deadline.  Job files are YAML or JSON documents::

    cluster:            # optional; CLI flags override
      socs: 32
      seed: 0
    jobs:
      - id: vgg-nightly
        workload: vgg11
        priority: 3
        min_socs: 8
        max_socs: 24
        epochs: 4
        submit_hour: 22.5
        deadline_hours: 10

YAML parsing uses PyYAML when it is installed and otherwise falls back
to :func:`parse_simple_yaml`, a small built-in parser for the
indentation/list/scalar subset the job files need — the dependency is
gated, never required.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path

try:                                                    # pragma: no cover
    import yaml as _yaml
except ImportError:                                     # pragma: no cover
    _yaml = None

__all__ = ["JobSpecError", "TrainingJob", "parse_job_specs",
           "load_job_file", "parse_simple_yaml"]


class JobSpecError(ValueError):
    """A job specification is malformed."""


@dataclass(frozen=True)
class TrainingJob:
    """One tenant's training request.

    ``min_socs`` is the gang-placement floor: the scheduler never runs
    the job on fewer chips (it preempts to a checkpoint instead), and
    ``max_socs`` caps how far elastic growth inflates it.  ``priority``
    is the fair-share weight; higher priorities both admit first and
    receive a larger share of surplus SoCs.
    """

    id: str
    workload: str
    priority: int = 1
    min_socs: int = 4
    max_socs: int = 16
    epochs: int = 4
    submit_hour: float = 0.0
    deadline_hours: float | None = None
    preset: str = "quick"
    seed: int = 0
    #: accuracy-admissible logical-group size (the Eq. 1 bound the
    #: elastic resize re-runs group sizing against)
    target_group_size: int = 4
    #: train CPU(FP32)+NPU(INT8) mixed precision instead of FP32 only
    mixed: bool = False

    def __post_init__(self):
        if not self.id or not isinstance(self.id, str):
            raise JobSpecError("job id must be a non-empty string")
        if not self.workload or not isinstance(self.workload, str):
            raise JobSpecError(f"job {self.id!r}: workload is required")
        if self.priority < 1:
            raise JobSpecError(f"job {self.id!r}: priority must be >= 1")
        if not 1 <= self.min_socs <= self.max_socs:
            raise JobSpecError(
                f"job {self.id!r}: need 1 <= min_socs <= max_socs, got "
                f"[{self.min_socs}, {self.max_socs}]")
        if self.epochs < 1:
            raise JobSpecError(f"job {self.id!r}: epochs must be >= 1")
        if self.submit_hour < 0:
            raise JobSpecError(
                f"job {self.id!r}: submit_hour must be non-negative")
        if self.deadline_hours is not None and self.deadline_hours <= 0:
            raise JobSpecError(
                f"job {self.id!r}: deadline_hours must be positive")
        if self.target_group_size < 1:
            raise JobSpecError(
                f"job {self.id!r}: target_group_size must be >= 1")


_JOB_FIELDS = {f.name for f in fields(TrainingJob)}


def _build_job(entry: dict, index: int) -> TrainingJob:
    if not isinstance(entry, dict):
        raise JobSpecError(f"job #{index}: expected a mapping, got "
                           f"{type(entry).__name__}")
    unknown = sorted(set(entry) - _JOB_FIELDS)
    if unknown:
        raise JobSpecError(f"job #{index}: unknown field(s) "
                           f"{', '.join(unknown)}")
    try:
        return TrainingJob(**entry)
    except TypeError as err:
        raise JobSpecError(f"job #{index}: {err}") from None


def parse_job_specs(payload) -> tuple[list[TrainingJob], dict]:
    """``(jobs, cluster_options)`` from a parsed job document.

    Accepts either ``{"jobs": [...], "cluster": {...}}`` or a bare list
    of job mappings.  Job ids must be unique.
    """
    if isinstance(payload, list):
        entries, cluster = payload, {}
    elif isinstance(payload, dict):
        entries = payload.get("jobs")
        cluster = payload.get("cluster") or {}
        if entries is None:
            raise JobSpecError("job document has no 'jobs' section")
        unknown = sorted(set(payload) - {"jobs", "cluster"})
        if unknown:
            raise JobSpecError(f"unknown top-level section(s): "
                               f"{', '.join(unknown)}")
    else:
        raise JobSpecError("job document must be a mapping or a list")
    if not isinstance(entries, list) or not entries:
        raise JobSpecError("'jobs' must be a non-empty list")
    if not isinstance(cluster, dict):
        raise JobSpecError("'cluster' must be a mapping")
    jobs = [_build_job(entry, i) for i, entry in enumerate(entries)]
    seen: set[str] = set()
    for job in jobs:
        if job.id in seen:
            raise JobSpecError(f"duplicate job id {job.id!r}")
        seen.add(job.id)
    return jobs, dict(cluster)


def load_job_file(path) -> tuple[list[TrainingJob], dict]:
    """Parse a YAML/JSON job file into ``(jobs, cluster_options)``."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as err:
            raise JobSpecError(f"{path}: invalid JSON ({err})") from None
    elif _yaml is not None:
        try:
            payload = _yaml.safe_load(text)
        except _yaml.YAMLError as err:
            raise JobSpecError(f"{path}: invalid YAML ({err})") from None
    else:
        payload = parse_simple_yaml(text)
    return parse_job_specs(payload)


# ----------------------------------------------------------------------
# Built-in YAML-subset parser (used when PyYAML is absent)
# ----------------------------------------------------------------------
def _parse_scalar(token: str):
    token = token.strip()
    if len(token) >= 2 and token[0] in "'\"" and token[-1] == token[0]:
        return token[1:-1]
    low = token.lower()
    if low in ("true", "yes", "on"):
        return True
    if low in ("false", "no", "off"):
        return False
    if low in ("null", "none", "~", ""):
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _content_lines(text: str) -> list[tuple[int, str]]:
    lines: list[tuple[int, str]] = []
    for raw in text.splitlines():
        if raw.lstrip().startswith("#"):
            continue
        stripped = raw.split(" #", 1)[0].rstrip()
        if not stripped.strip():
            continue
        lines.append((len(stripped) - len(stripped.lstrip()),
                      stripped.lstrip()))
    return lines


def _parse_block(lines, i: int, indent: int):
    if lines[i][1].startswith("- "):
        return _parse_list(lines, i, indent)
    return _parse_map(lines, i, indent)


def _parse_map(lines, i: int, indent: int):
    out: dict = {}
    while i < len(lines) and lines[i][0] == indent \
            and not lines[i][1].startswith("- "):
        content = lines[i][1]
        if ":" not in content:
            raise JobSpecError(f"expected 'key: value', got {content!r}")
        key, _, rest = content.partition(":")
        key, rest = key.strip(), rest.strip()
        if rest:
            out[key] = _parse_scalar(rest)
            i += 1
        else:
            i += 1
            if i < len(lines) and lines[i][0] > indent:
                out[key], i = _parse_block(lines, i, lines[i][0])
            else:
                out[key] = None
    return out, i


def _parse_list(lines, i: int, indent: int):
    out: list = []
    while i < len(lines) and lines[i][0] == indent \
            and lines[i][1].startswith("- "):
        content = lines[i][1][2:].strip()
        if ":" in content:
            key, _, rest = content.partition(":")
            item = {key.strip(): _parse_scalar(rest.strip())}
            i += 1
            if i < len(lines) and lines[i][0] > indent:
                more, i = _parse_map(lines, i, lines[i][0])
                item.update(more)
            out.append(item)
        else:
            out.append(_parse_scalar(content))
            i += 1
    return out, i


def parse_simple_yaml(text: str):
    """Parse the YAML subset job files use (mappings, lists, scalars).

    Supports nested block mappings, block lists (``- `` items, with
    inline first key), ``#`` comments and plain/quoted scalars — enough
    for :mod:`repro.jobs` spec files without requiring PyYAML.
    """
    lines = _content_lines(text)
    if not lines:
        raise JobSpecError("empty job document")
    value, i = _parse_block(lines, 0, lines[0][0])
    if i != len(lines):
        raise JobSpecError(
            f"could not parse line: {lines[i][1]!r} (bad indentation?)")
    return value
