"""State-dict arithmetic shared by all aggregation schemes, plus the
timeout/retry policy collectives apply over degraded links."""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..nn.flat import FlatState, common_flat_layout

StateDict = "OrderedDict[str, np.ndarray]"

__all__ = ["RetryPolicy", "average_states", "weighted_average_states",
           "state_l2_distance", "zeros_like_state"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry with exponential backoff for degraded links.

    A transfer crossing a PCB NIC running at a bandwidth multiplier at
    or below ``degraded_threshold`` starts missing its transport
    timeout; the sender retries with exponentially growing backoff.
    The model is deterministic: the number of timed-out attempts grows
    with the severity of the degradation (halving the bandwidth again
    costs one more retry), capped at ``max_retries``.
    """

    timeout_s: float = 1.0
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    max_retries: int = 5
    degraded_threshold: float = 0.5

    def __post_init__(self):
        if self.timeout_s < 0 or self.backoff_base_s < 0:
            raise ValueError("timeout and backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 < self.degraded_threshold <= 1.0:
            raise ValueError("degraded_threshold must be in (0, 1]")

    def retries_for(self, multiplier: float) -> int:
        """Timed-out attempts for a link at ``multiplier`` of nominal."""
        if multiplier >= 1.0 or multiplier > self.degraded_threshold:
            return 0
        if multiplier <= 0.0:
            return self.max_retries
        severity = self.degraded_threshold / multiplier
        return min(self.max_retries, 1 + int(math.floor(math.log2(severity))))

    def penalty_seconds(self, retries: int) -> float:
        """Wall-time cost of ``retries`` timed-out attempts + backoffs."""
        retries = min(retries, self.max_retries)
        if retries <= 0:
            return 0.0
        backoff = sum(self.backoff_base_s * self.backoff_factor ** k
                      for k in range(retries))
        return retries * self.timeout_s + backoff


def average_states(states: Sequence[dict], metrics=None
                   ) -> "OrderedDict[str, np.ndarray]":
    """Uniform element-wise average of model state dicts."""
    if not states:
        raise ValueError("need at least one state")
    return weighted_average_states(states, [1.0] * len(states),
                                   metrics=metrics)


#: elements per cache block of the averaging kernel (64k floats =
#: 256 KiB — the accumulator block stays L2-resident across the k
#: add passes instead of streaming the whole model k times)
_AVG_BLOCK = 1 << 16


def _average_arrays_f32(arrays: Sequence[np.ndarray],
                        scales: Sequence[np.float32],
                        out: np.ndarray | None = None) -> np.ndarray:
    """Weighted sum of float32 arrays — the one true op sequence.

    Both the fused whole-model path and the per-key fallback funnel
    through this helper, so their outputs are bit-for-bit identical by
    construction (identical elementwise ops in identical order; every
    element is independent of array shape and block boundaries).

    Uniform weights take a sum-then-scale form — ``k-1`` in-place adds
    and one multiply, the cheapest exact formulation (and one rounding
    *fewer* per element than scale-then-sum).  Non-uniform weights
    scale each term first, reusing one scratch buffer.  Either way the
    kernel walks the storage in L2-sized blocks.

    ``out`` optionally receives the result (bucketed aggregation writes
    each segment into one preallocated whole-model buffer); same-shape
    float32, returned for convenience.
    """
    if len(arrays) == 1:
        if out is None:
            return arrays[0] * scales[0]
        np.multiply(arrays[0].reshape(-1), scales[0], out=out.reshape(-1))
        return out
    if out is None:
        out = np.empty_like(arrays[0])
    flat_out = out.reshape(-1)
    flats = [arr.reshape(-1) for arr in arrays]
    uniform = all(s == scales[0] for s in scales[1:])
    scratch = None if uniform else np.empty(
        min(_AVG_BLOCK, flat_out.size), dtype=np.float32)
    for start in range(0, flat_out.size, _AVG_BLOCK):
        sl = slice(start, start + _AVG_BLOCK)
        acc = flat_out[sl]
        if uniform:
            np.add(flats[0][sl], flats[1][sl], out=acc)
            for flat in flats[2:]:
                acc += flat[sl]
            acc *= scales[0]
        else:
            np.multiply(flats[0][sl], scales[0], out=acc)
            for flat, scale in zip(flats[1:], scales[1:]):
                tmp = scratch[:acc.size]
                np.multiply(flat[sl], scale, out=tmp)
                acc += tmp
    return out


def weighted_average_states(states: Sequence[dict],
                            weights: Sequence[float],
                            metrics=None
                            ) -> "OrderedDict[str, np.ndarray]":
    """Weighted element-wise average (weights are normalised).

    float32 tensors average in single precision (sum-then-scale for
    uniform weights): for the k <= 32 replicas a merge ever sees the
    elementwise error is bounded by ~k ulp, invisible next to the
    inter-replica divergence being averaged, and it halves the memory
    traffic of the old float64 accumulation (``benchmarks/perf``
    measures the win against that reference).  Non-float32 tensors in
    per-key dicts keep the float64 accumulate + cast-back path.

    ``metrics`` optionally takes a telemetry
    :class:`~repro.telemetry.MetricsRegistry`; each call then counts one
    ``comm.merges`` and the state bytes actually averaged
    (``comm.merged_bytes``) — this is the *real* data-plane aggregation
    every strategy performs, as opposed to the simulated-scale transfer
    accounting in :class:`~repro.cluster.network.NetworkFabric`.
    """
    if len(states) != len(weights):
        raise ValueError("one weight per state required")
    total = float(sum(weights))
    if total <= 0 or not math.isfinite(total):
        raise ValueError("weights must sum to a positive finite value")
    scales = [np.float32(weight / total) for weight in weights]
    layout = common_flat_layout(states)
    if layout is not None:
        # Fused path: every state shares one flat layout, so the whole
        # model averages in one pass over the concatenated storage.
        out = FlatState(layout, _average_arrays_f32(
            [state.flat for state in states], scales))
        if metrics is not None and metrics.enabled:
            metrics.counter("comm.merges").inc()
            metrics.counter("comm.merged_bytes").inc(
                out.flat.nbytes * len(states))
        return out
    keys = list(states[0].keys())
    for state in states[1:]:
        if list(state.keys()) != keys:
            raise ValueError("state dicts have mismatched keys")
    out: OrderedDict[str, np.ndarray] = OrderedDict()
    for key in keys:
        first = np.asarray(states[0][key])
        if first.dtype == np.float32:
            out[key] = _average_arrays_f32(
                [np.asarray(state[key]) for state in states], scales)
            continue
        acc = np.zeros_like(np.asarray(first, dtype=np.float64))
        for state, weight in zip(states, weights):
            acc += (weight / total) * state[key]
        out[key] = acc.astype(first.dtype)
    if metrics is not None and metrics.enabled:
        nbytes = sum(np.asarray(v).nbytes for v in out.values())
        metrics.counter("comm.merges").inc()
        metrics.counter("comm.merged_bytes").inc(nbytes * len(states))
    return out


def state_l2_distance(a: dict, b: dict) -> float:
    """L2 distance between two state dicts (divergence diagnostics)."""
    total = 0.0
    for key in a:
        diff = np.asarray(a[key], dtype=np.float64) - b[key]
        total += float(np.sum(diff * diff))
    return math.sqrt(total)


def zeros_like_state(state: dict) -> "OrderedDict[str, np.ndarray]":
    return OrderedDict((k, np.zeros_like(v)) for k, v in state.items())
