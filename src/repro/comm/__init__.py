"""Collective-communication payload math.

The *timing* of collectives lives in :mod:`repro.cluster.network`; this
package holds the *data* side: state averaging used by every strategy,
and the deep-gradient-compression (DGC) sparsifier HiPress builds on.
"""

from .primitives import (RetryPolicy, average_states,
                         weighted_average_states, state_l2_distance,
                         zeros_like_state)
from .compression import DgcCompressor, SparseGradient
from .buckets import (BACKWARD_START_FRACTION, BucketPlan, GradientBucket,
                      bucketed_average_states)

__all__ = ["RetryPolicy", "average_states", "weighted_average_states",
           "state_l2_distance", "zeros_like_state", "DgcCompressor",
           "SparseGradient", "BucketPlan", "GradientBucket",
           "bucketed_average_states", "BACKWARD_START_FRACTION"]
