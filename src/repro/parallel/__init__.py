"""Parallel execution of independent logical-group replicas.

Between two sync points (the per-epoch leader ring), SoCFlow's logical
groups train on disjoint data shards and never communicate, so their
real-math training loops can run in separate OS processes.  The
:class:`~repro.parallel.pool.LgExecutor` ships each group's runtime
state to a persistent worker pool through shared-memory flat buffers,
runs the group's whole epoch there, and loads the results back —
bit-identical to the sequential loop.
"""

from .pool import LgExecutor

__all__ = ["LgExecutor"]
