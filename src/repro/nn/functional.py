"""Neural-network ops with hand-written, vectorised backward passes.

Convolution uses im2col/col2im so that both directions reduce to one
large matrix multiply — the only way a pure-numpy CNN stays fast enough
to train inside the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear", "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "batch_norm", "log_softmax", "softmax", "cross_entropy", "dropout",
    "im2col", "col2im",
]


def im2col(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Unfold NCHW ``x`` into ``(N, C*k*k, L)`` patch columns.

    ``x`` must already be padded.  Uses stride tricks: no data copy until
    the final reshape.
    """
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    return windows.reshape(n, c * kernel * kernel, out_h * out_w)


def col2im(cols: np.ndarray, x_shape: tuple[int, ...], kernel: int,
           stride: int) -> np.ndarray:
    """Fold ``(N, C*k*k, L)`` columns back into NCHW, summing overlaps."""
    n, c, h, w = x_shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for ki in range(kernel):
        h_end = ki + stride * out_h
        for kj in range(kernel):
            w_end = kj + stride * out_w
            x[:, :, ki:h_end:stride, kj:w_end:stride] += cols[:, :, ki, kj]
    return x


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with ``weight`` shaped (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` is shaped ``(out_channels, in_channels // groups, k, k)``.
    ``groups=in_channels`` gives the depthwise convolution MobileNet needs.
    """
    if padding:
        x = x.pad2d(padding)
    n, c, h, w = x.shape
    out_c, in_c_per_group, kernel, _ = weight.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    if groups == 1:
        cols = im2col(x.data, kernel, stride)              # (N, C*k*k, L)
        w_mat = weight.data.reshape(out_c, -1)              # (O, C*k*k)
        out_data = np.matmul(w_mat[None, :, :], cols)
        out_data = out_data.reshape(n, out_c, out_h, out_w)

        def backward(grad: np.ndarray) -> None:
            grad_mat = grad.reshape(n, out_c, -1)           # (N, O, L)
            if weight.requires_grad:
                grad_w = np.einsum("nol,nkl->ok", grad_mat, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_cols = np.matmul(w_mat.T[None, :, :], grad_mat)
                x._accumulate(col2im(grad_cols, x.shape, kernel, stride))

        out = Tensor._make(out_data, (x, weight), backward)
    else:
        # Grouped/depthwise: run each group through the same im2col path.
        group_in = c // groups
        group_out = out_c // groups
        cols = im2col(x.data, kernel, stride)
        cols = cols.reshape(n, groups, group_in * kernel * kernel, -1)
        w_mat = weight.data.reshape(groups, group_out, -1)
        out_data = np.einsum("gok,ngkl->ngol", w_mat, cols, optimize=True)
        out_data = out_data.reshape(n, out_c, out_h, out_w)

        def backward(grad: np.ndarray) -> None:
            grad_mat = grad.reshape(n, groups, group_out, -1)
            if weight.requires_grad:
                grad_w = np.einsum("ngol,ngkl->gok", grad_mat, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_cols = np.einsum("gok,ngol->ngkl", w_mat, grad_mat,
                                      optimize=True)
                grad_cols = grad_cols.reshape(n, c * kernel * kernel, -1)
                x._accumulate(col2im(grad_cols, x.shape, kernel, stride))

        out = Tensor._make(out_data, (x, weight), backward)

    if bias is not None:
        out = out + bias.reshape(1, out_c, 1, 1)
    return out


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride)
    cols = cols.reshape(n * c, kernel * kernel, out_h * out_w)
    arg = cols.argmax(axis=1)                               # (N*C, L)
    out_data = np.take_along_axis(cols, arg[:, None, :], axis=1)
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.zeros((n * c, kernel * kernel, out_h * out_w),
                             dtype=np.float32)
        np.put_along_axis(grad_cols, arg[:, None, :],
                          grad.reshape(n * c, 1, -1), axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, stride)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.broadcast_to(
            grad.reshape(n * c, 1, -1) * scale,
            (n * c, kernel * kernel, out_h * out_w)).astype(np.float32)
        grad_x = col2im(grad_cols.copy(), (n * c, 1, h, w), kernel, stride)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over H and W, returning (N, C)."""
    return x.mean(axis=(2, 3))


def batch_norm(x: Tensor, weight: Tensor, bias: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalisation over the channel axis of NC or NCHW input.

    Mutates ``running_mean``/``running_var`` in place during training, as
    torch does; they are plain numpy buffers owned by the module.
    """
    axes = (0,) if x.ndim == 2 else (0, 2, 3)
    shape = (1, -1) if x.ndim == 2 else (1, -1, 1, 1)

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        running_var *= (1.0 - momentum)
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out_data = x_hat * weight.data.reshape(shape) + bias.data.reshape(shape)

    count = x.data.size // x.shape[1 if x.ndim > 1 else 0]

    def backward(grad: np.ndarray) -> None:
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=axes))
        if weight.requires_grad:
            weight._accumulate((grad * x_hat).sum(axis=axes))
        if x.requires_grad:
            g = grad * weight.data.reshape(shape)
            if training:
                grad_sum = g.sum(axis=axes, keepdims=True)
                grad_dot = (g * x_hat).sum(axis=axes, keepdims=True)
                grad_x = (g - grad_sum / count
                          - x_hat * grad_dot / count) * inv_std.reshape(shape)
            else:
                grad_x = g * inv_std.reshape(shape)
            x._accumulate(grad_x.astype(np.float32))

    return Tensor._make(out_data, (x, weight, bias), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and int targets (N,)."""
    targets = np.asarray(targets)
    log_probs = log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator) -> Tensor:
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)
