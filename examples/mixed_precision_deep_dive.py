#!/usr/bin/env python
"""Scenario: watch the mixed-precision controller (§3.2) at work.

Trains one logical group with the CPU(FP32)+NPU(INT8) split and prints,
per epoch, alpha (FP32/INT8 logits agreement), the resulting CPU share
``max(e^-alpha, 1-beta)``, and accuracy — then compares the final model
against pure-FP32 and pure-INT8 training on the same data.

Run:  python examples/mixed_precision_deep_dive.py
"""

import math

import numpy as np

from repro.cluster import ClusterTopology
from repro.core import GroupMixedTrainer
from repro.data import load_dataset
from repro.distributed import RunConfig
from repro.distributed.base import CostModel, evaluate_accuracy
from repro.quant import Int8Trainer, QuantConfig
from repro.quant.mixed import MixedPrecisionController


def train_epoch(step_fn, task, batch_size, rng):
    order = rng.permutation(len(task.x_train))
    for start in range(0, len(order) - batch_size + 1, batch_size):
        idx = order[start:start + batch_size]
        step_fn(task.x_train[idx], task.y_train[idx])


def main() -> None:
    task = load_dataset("cifar10", scale=0.06, image_size=16, seed=0)
    config = RunConfig(task=task, model_name="vgg11", width=0.25,
                       batch_size=16, lr=0.05, momentum=0.9,
                       topology=ClusterTopology(num_socs=32))
    cost = CostModel(config)
    print(f"beta (NPU compute share) = "
          f"{cost.t_cpu_sample / (cost.t_cpu_sample + cost.t_npu_sample):.2f}"
          f"  (CPU {1e3 * cost.t_cpu_sample:.0f} ms/sample, "
          f"NPU {1e3 * cost.t_npu_sample:.0f} ms/sample)\n")

    controller = MixedPrecisionController(cost.t_cpu_sample,
                                          cost.t_npu_sample)
    group = GroupMixedTrainer(config, controller, QuantConfig())
    rng = np.random.default_rng(0)

    print(f"{'epoch':>5} {'alpha':>6} {'cpu_share':>9} {'accuracy':>9}")
    for epoch in range(6):
        train_epoch(group.train_batch, task, config.batch_size, rng)
        alpha = group.update_alpha(task.x_test[:128])
        accuracy = evaluate_accuracy(group.fp32, task.x_test, task.y_test)
        print(f"{epoch:>5} {alpha:>6.3f} {controller.cpu_share:>9.2f} "
              f"{accuracy:>9.1%}")

    # -- reference points: pure FP32 and pure INT8 --------------------
    from repro.distributed.base import fp32_train_step, make_model
    from repro.nn.optim import SGD

    fp32 = make_model(config)
    opt = SGD(fp32.parameters(), lr=config.lr, momentum=config.momentum)
    rng = np.random.default_rng(0)
    for _ in range(6):
        train_epoch(lambda x, y: fp32_train_step(fp32, opt, x, y),
                    task, config.batch_size, rng)

    int8 = Int8Trainer(make_model(config), lr=config.lr,
                       config=QuantConfig(), momentum=config.momentum)
    rng = np.random.default_rng(0)
    for _ in range(6):
        train_epoch(int8.train_step, task, config.batch_size, rng)

    acc_mixed = evaluate_accuracy(group.fp32, task.x_test, task.y_test)
    acc_fp32 = evaluate_accuracy(fp32, task.x_test, task.y_test)
    acc_int8 = evaluate_accuracy(int8.model, task.x_test, task.y_test)
    t_mixed = controller.step_time(config.batch_size)
    t_fp32 = config.batch_size * cost.t_cpu_sample

    print(f"\nafter 6 epochs:  mixed {acc_mixed:.1%}  "
          f"fp32 {acc_fp32:.1%}  int8 {acc_int8:.1%}")
    print(f"per-batch step time: mixed {1e3 * t_mixed:.0f} ms vs "
          f"fp32-only {1e3 * t_fp32:.0f} ms "
          f"({t_fp32 / t_mixed:.1f}x faster); e^-alpha floor keeps "
          f">= {math.exp(-1):.0%} of data on the CPU for accuracy")


if __name__ == "__main__":
    main()
