"""Elastic multi-tenant job scheduling for the SoC-Cluster.

The paper trains *one* model in the overnight idle window; real
clusters host many tenants.  This subsystem layers a job abstraction
over the existing SoCFlow machinery:

- :mod:`spec` — :class:`TrainingJob` (workload, priority, elastic SoC
  range, deadline) and YAML/JSON job-file parsing;
- :mod:`queue` — priority queue with structural admission control;
- :mod:`execution` — one job's warm training state (trainer groups,
  mapping/CG plan, per-job clock, checkpoint) with gang-place /
  elastic-resize / preempt / run-epoch lifecycle;
- :mod:`scheduler` — the round-based :class:`ElasticScheduler`: idle
  capacity from the tidal session trace, fair-share gang placement
  with priority preemption, elastic grow/shrink as users come and go.
"""

from .execution import JobCheckpoint, JobExecution
from .queue import JobAdmissionError, JobQueue, QueueEntry
from .scheduler import ElasticScheduler, JobRecord, ScheduleReport
from .spec import (JobSpecError, TrainingJob, load_job_file, parse_job_specs,
                   parse_simple_yaml)

__all__ = [
    "TrainingJob", "JobSpecError", "parse_job_specs", "load_job_file",
    "parse_simple_yaml",
    "JobQueue", "QueueEntry", "JobAdmissionError",
    "JobExecution", "JobCheckpoint",
    "ElasticScheduler", "JobRecord", "ScheduleReport",
]
