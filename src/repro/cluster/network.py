"""Link-level network model with shared-NIC contention.

Transfer times come from bandwidth-fair max-load scheduling: a set of
simultaneous flows is charged, per link and direction, the total bytes
crossing that link divided by its bandwidth; the slowest link decides
the step time.  Collectives (ring all-reduce, parameter-server
push/pull, tree aggregation) are decomposed into phases of simultaneous
flows, so *concurrent collectives automatically contend* when their
flows share a PCB NIC — the exact effect SoCFlow's communication
planning removes.

Calibration against §2.3: a 32-SoC ring all-reduce of ResNet-18
gradients costs ~0.9 s of transfer plus ~1.3 s of startup (the paper
measures 2.225 s total with 58% startup); a parameter server hosted on
a SoC serialises 2·(n-1) payloads through one 1 Gbps link, matching the
measured 20.6 s for 32 SoCs on VGG-11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .topology import ClusterTopology

__all__ = ["Flow", "NetworkFabric", "overlap_timeline"]

#: pseudo SoC id for the control board (parameter-server host option)
CONTROL_BOARD = -1


@dataclass(frozen=True)
class Flow:
    """One point-to-point transfer between SoCs (or the control board)."""

    src: int
    dst: int
    nbytes: float

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError("flow size must be non-negative")


#: collective startup cost per participant: a fixed connection setup
#: plus a per-gradient-tensor launch overhead.  Calibrated on §2.3's
#: measurement that preparing/starting a 32-SoC ResNet-18 aggregation
#: (62 tensors) takes ~1300 ms, i.e. ~40 ms per SoC.
STARTUP_BASE_S = 0.005
STARTUP_PER_TENSOR_S = 0.00056


class NetworkFabric:
    """Transfer-time calculator over one :class:`ClusterTopology`.

    ``num_tensors`` sets the per-participant collective startup cost:
    small models (LeNet: 10 tensors) start collectives far faster than
    deep ones (ResNet-50: 161).  Defaults to the topology's flat value
    when no model is attached.
    """

    def __init__(self, topology: ClusterTopology,
                 num_tensors: int | None = None,
                 retry_policy: "RetryPolicy | None" = None,
                 telemetry=None):
        from ..comm.primitives import RetryPolicy
        from ..telemetry import NULL_TELEMETRY
        self.topology = topology
        if num_tensors is None:
            self.startup_per_soc_s = topology.startup_per_soc_s
        else:
            self.startup_per_soc_s = (STARTUP_BASE_S
                                      + STARTUP_PER_TENSOR_S * num_tensors)
        self.retry_policy = retry_policy or RetryPolicy()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: pcb -> bandwidth multiplier for degraded/flapping PCB NICs
        self._pcb_multipliers: dict[int, float] = {}
        #: cumulative timed-out attempts charged (observability/tests)
        self.total_retries = 0

    # ------------------------------------------------------------------
    # Link degradation (fault injection)
    # ------------------------------------------------------------------
    def set_pcb_multiplier(self, pcb: int, multiplier: float) -> None:
        """Run PCB ``pcb``'s shared NIC at ``multiplier`` of nominal."""
        if not 0 <= pcb < self.topology.num_pcbs:
            raise ValueError(f"PCB id {pcb} out of range "
                             f"[0, {self.topology.num_pcbs})")
        if not 0.0 < multiplier <= 1.0:
            raise ValueError("multiplier must be in (0, 1]")
        if multiplier == 1.0:
            self._pcb_multipliers.pop(pcb, None)
        else:
            self._pcb_multipliers[pcb] = multiplier

    def apply_pcb_multipliers(self, multipliers: dict[int, float]) -> None:
        """Replace all degradations (an epoch's NIC state in one call)."""
        self._pcb_multipliers.clear()
        for pcb, multiplier in multipliers.items():
            self.set_pcb_multiplier(pcb, multiplier)

    def reset_degradations(self) -> None:
        self._pcb_multipliers.clear()

    def pcb_multiplier(self, pcb: int) -> float:
        return self._pcb_multipliers.get(pcb, 1.0)

    @property
    def degraded_pcbs(self) -> dict[int, float]:
        return dict(self._pcb_multipliers)

    # ------------------------------------------------------------------
    # Core primitive
    # ------------------------------------------------------------------
    def _links_of(self, flow: Flow) -> list[tuple[str, str]]:
        """(link, direction) pairs a flow traverses. Links are full duplex."""
        topo = self.topology
        links: list[tuple[str, str]] = []
        if flow.src == CONTROL_BOARD:
            links.append(("ctrl", "tx"))
            links.append(("switch", "any"))
        else:
            links.append((f"soc:{flow.src}", "tx"))
        if flow.dst == CONTROL_BOARD:
            links.append(("switch", "any"))
            links.append(("ctrl", "rx"))
        else:
            links.append((f"soc:{flow.dst}", "rx"))
        if flow.src != CONTROL_BOARD and flow.dst != CONTROL_BOARD:
            if not topo.same_pcb(flow.src, flow.dst):
                links.append((f"pcb:{topo.pcb_of(flow.src)}", "tx"))
                links.append(("switch", "any"))
                links.append((f"pcb:{topo.pcb_of(flow.dst)}", "rx"))
        elif flow.src != CONTROL_BOARD:
            links.append((f"pcb:{topo.pcb_of(flow.src)}", "tx"))
        elif flow.dst != CONTROL_BOARD:
            links.append((f"pcb:{topo.pcb_of(flow.dst)}", "rx"))
        return links

    def _bandwidth(self, link: str) -> float:
        topo = self.topology
        if link.startswith("soc:"):
            return topo.soc.nic_bps
        if link.startswith("pcb:"):
            multiplier = self._pcb_multipliers.get(int(link[4:]), 1.0)
            return topo.pcb_nic_bps * multiplier
        if link == "switch":
            return topo.switch_bps
        if link == "ctrl":
            return topo.switch_bps  # dual SFP+ on the control board
        raise ValueError(f"unknown link {link!r}")

    def transfer_time(self, flows: Iterable[Flow]) -> float:
        """Seconds for all ``flows`` to complete, running simultaneously.

        Transfers crossing a degraded PCB NIC additionally pay the
        timeout/retry penalty of :class:`~repro.comm.primitives.RetryPolicy`
        for the worst link involved.
        """
        flows = list(flows)
        load: dict[tuple[str, str], float] = {}
        any_flow = False
        for flow in flows:
            if flow.nbytes == 0:
                continue
            any_flow = True
            for key in self._links_of(flow):
                load[key] = load.get(key, 0.0) + flow.nbytes
        if not any_flow:
            return 0.0
        worst = max(8.0 * nbytes / self._bandwidth(link)
                    for (link, _), nbytes in load.items())
        penalty = 0.0
        retries = 0
        if self._pcb_multipliers:
            worst_mult = min(
                (self._pcb_multipliers.get(int(link[4:]), 1.0)
                 for (link, _) in load if link.startswith("pcb:")),
                default=1.0)
            retries = self.retry_policy.retries_for(worst_mult)
            if retries:
                penalty = self.retry_policy.penalty_seconds(retries)
                self.total_retries += retries
        if self.telemetry.enabled:
            self._emit_transfer_telemetry(flows, load, worst, penalty,
                                          retries)
        return worst + penalty + self.topology.hop_latency_s

    def _emit_transfer_telemetry(self, flows, load, worst: float,
                                 penalty: float, retries: int) -> None:
        """Emit ``nic_wait`` spans and retry metrics for one transfer.

        The contention wait is the slowdown shared links impose beyond
        the slowest flow running alone; the retry penalty is the
        degraded-link backoff.  Spans are stamped at the current
        simulated time, i.e. the start of the window the caller is
        about to charge.
        """
        if retries:
            self.telemetry.metrics.counter("net.retries").inc(retries)
        tracer = self.telemetry.tracer
        if not tracer.enabled:
            return
        bottleneck, bottleneck_bytes = max(
            load.items(), key=lambda kv: 8.0 * kv[1] / self._bandwidth(kv[0][0]))
        solo = max((max(8.0 * flow.nbytes / self._bandwidth(link)
                        for link, _ in self._links_of(flow))
                    for flow in flows if flow.nbytes > 0), default=0.0)
        wait = max(0.0, worst - solo) + penalty
        if wait <= 0.0:
            return
        link = bottleneck[0]
        pcb = int(link[4:]) if link.startswith("pcb:") else None
        soc = int(link[4:]) if link.startswith("soc:") else None
        tracer.span("nic_wait", self.telemetry.now, wait, pcb=pcb, soc=soc,
                    link=link, link_bytes=bottleneck_bytes, flows=len(flows),
                    retries=retries, retry_penalty_s=penalty)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def _startup(self, num_participants: int,
                 num_tensors: float | None = None) -> float:
        """Collective launch cost for ``num_participants``.

        ``num_tensors`` overrides the per-SoC rate for one collective:
        a gradient *bucket* fuses only a slice of the model's tensors,
        so its launch is proportionally cheaper than a whole-model
        collective (fractional counts are fine — the cost is linear).
        """
        if num_tensors is None:
            return self.startup_per_soc_s * num_participants
        return (STARTUP_BASE_S
                + STARTUP_PER_TENSOR_S * num_tensors) * num_participants

    def pcb_ring_bytes(self, rings: Sequence[Sequence[int]],
                       nbytes: float) -> dict[int, float]:
        """Bytes each PCB NIC carries for one full set of ring all-reduces.

        Every ring edge moves ``nbytes / n`` per phase over ``2(n-1)``
        phases; an edge crossing a PCB boundary loads both PCB NICs
        (tx on the source's, rx on the destination's).  Used by the
        metrics registry to account NIC traffic exactly, independent of
        how many simulated steps a computed window is charged for.
        """
        out: dict[int, float] = {}
        for ring in (list(r) for r in rings if len(r) >= 2):
            per_edge = nbytes / len(ring) * 2 * (len(ring) - 1)
            for i, src in enumerate(ring):
                dst = ring[(i + 1) % len(ring)]
                if not self.topology.same_pcb(src, dst):
                    for pcb in (self.topology.pcb_of(src),
                                self.topology.pcb_of(dst)):
                        out[pcb] = out.get(pcb, 0.0) + per_edge
        return out

    def bucketed_pcb_ring_bytes(self, rings: Sequence[Sequence[int]],
                                bucket_bytes: Sequence[float],
                                total_bytes: float | None = None
                                ) -> dict[int, float]:
        """Per-PCB NIC bytes for one ring all-reduce *per bucket*.

        Guarded by the conservation invariant that caught the classic
        double-count: summing the per-bucket loads must reproduce the
        whole-model :meth:`pcb_ring_bytes` exactly (the payload was
        merely sliced, not multiplied).  Raises ``AssertionError`` on
        drift — both on the payload split and on the per-PCB totals.
        """
        bucket_bytes = list(bucket_bytes)
        if total_bytes is None:
            total_bytes = sum(bucket_bytes)
        elif not math.isclose(sum(bucket_bytes), total_bytes,
                              rel_tol=1e-9, abs_tol=1e-6):
            raise AssertionError(
                f"bucket payloads sum to {sum(bucket_bytes)!r} bytes, "
                f"whole model is {total_bytes!r}: bucket split lost or "
                "duplicated gradient bytes")
        out: dict[int, float] = {}
        for nbytes in bucket_bytes:
            for pcb, load in self.pcb_ring_bytes(rings, nbytes).items():
                out[pcb] = out.get(pcb, 0.0) + load
        whole = self.pcb_ring_bytes(rings, total_bytes)
        if set(out) != set(whole) or any(
                not math.isclose(out[pcb], whole[pcb],
                                 rel_tol=1e-9, abs_tol=1e-6)
                for pcb in whole):
            raise AssertionError(
                f"bucketed NIC accounting drifted: per-bucket sum {out!r} "
                f"!= whole-model {whole!r}")
        return out

    def ring_allreduce_time(self, socs: Sequence[int], nbytes: float,
                            num_tensors: float | None = None) -> float:
        """One ring all-reduce over ``socs`` of an ``nbytes`` payload."""
        return self.concurrent_ring_allreduce_time([list(socs)], nbytes,
                                                   num_tensors=num_tensors)

    def concurrent_ring_allreduce_time(self, rings: Sequence[Sequence[int]],
                                       nbytes: float,
                                       num_tensors: float | None = None
                                       ) -> float:
        """Several ring all-reduces running at the same time.

        Every ring executes its 2(n-1) scatter-reduce/all-gather phases in
        lock-step; phases of different rings overlap and contend for
        shared links.  Returns the makespan.  ``num_tensors`` prices the
        startup of a partial (bucketed) collective.
        """
        rings = [list(r) for r in rings if len(r) >= 2]
        if not rings:
            return self._startup(1, num_tensors=num_tensors)
        phases = [2 * (len(ring) - 1) for ring in rings]
        total = max(self._startup(len(ring), num_tensors=num_tensors)
                    for ring in rings)
        for step in range(max(phases)):
            flows = [
                Flow(ring[i], ring[(i + 1) % len(ring)], nbytes / len(ring))
                for ring, ring_phases in zip(rings, phases)
                if step < ring_phases
                for i in range(len(ring))
            ]
            total += self.transfer_time(flows)
        return total

    def parameter_server_time(self, socs: Sequence[int], nbytes: float,
                              server: int | None = None,
                              num_tensors: float | None = None) -> float:
        """Push-then-pull through a central server.

        ``server=None`` hosts the server on the first SoC (the deployment
        the paper measures: all traffic serialises through one 1 Gbps SoC
        link); pass :data:`CONTROL_BOARD` to host it off-board.
        """
        socs = list(socs)
        if server is None:
            server = socs[0]
        workers = [s for s in socs if s != server]
        if not workers:
            return self._startup(1, num_tensors=num_tensors)
        push = self.transfer_time([Flow(w, server, nbytes) for w in workers])
        pull = self.transfer_time([Flow(server, w, nbytes) for w in workers])
        return self._startup(len(socs), num_tensors=num_tensors) + push + pull

    def tree_aggregate_time(self, groups: Sequence[Sequence[int]],
                            nbytes: float,
                            root: int | None = None) -> float:
        """Two-level tree: members -> group leader, leaders -> root.

        This is the T-FedAvg aggregation pattern (leaders are the first
        SoC of each group).  The reverse broadcast uses the same routes.
        """
        groups = [list(g) for g in groups if g]
        if not groups:
            return 0.0
        leaders = [group[0] for group in groups]
        if root is None:
            root = leaders[0]
        up_local = self.transfer_time(
            [Flow(member, group[0], nbytes)
             for group in groups for member in group[1:]])
        up_root = self.transfer_time(
            [Flow(leader, root, nbytes) for leader in leaders
             if leader != root])
        down_root = self.transfer_time(
            [Flow(root, leader, nbytes) for leader in leaders
             if leader != root])
        down_local = self.transfer_time(
            [Flow(group[0], member, nbytes)
             for group in groups for member in group[1:]])
        participants = sum(len(g) for g in groups)
        return (self._startup(participants)
                + up_local + up_root + down_root + down_local)

    def broadcast_time(self, src: int, dsts: Sequence[int],
                       nbytes: float) -> float:
        """One-to-many transfer (model/data dispatch before training)."""
        return self.transfer_time([Flow(src, d, nbytes) for d in dsts
                                   if d != src])


def overlap_timeline(compute_s: float, ready_times: Sequence[float],
                     durations: Sequence[float]
                     ) -> tuple[list[tuple[float, float]], float]:
    """Schedule bucket collectives against one compute window.

    Bucket *i*'s gradients exist at ``ready_times[i]`` (seconds into
    the window); its collective occupies the shared NIC path for
    ``durations[i]`` seconds.  Collectives serialise on that path in
    emission order — each starts at ``max(ready, previous end)`` — the
    same greedy schedule Horovod's cycle loop and DDP's bucket queue
    produce.  Returns the per-bucket ``(start, end)`` schedule and the
    *visible* sync time: how far the last collective runs past the end
    of the compute window (0 when communication hides entirely).
    """
    if len(ready_times) != len(durations):
        raise ValueError("one duration per ready time required")
    schedule: list[tuple[float, float]] = []
    cursor = 0.0
    for ready, duration in zip(ready_times, durations):
        if duration < 0 or ready < 0:
            raise ValueError("ready times and durations must be >= 0")
        start = max(ready, cursor)
        cursor = start + duration
        schedule.append((start, cursor))
    return schedule, max(0.0, cursor - compute_s)
