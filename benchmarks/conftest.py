"""Shared machinery for the per-figure benchmark harness.

Every benchmark pulls training runs from one session-scoped
:class:`SuiteRunner` cache, so figures that share runs (Table 3,
Figures 8/9/12) pay for each (workload, method, socs) combination once.
All runs use the ``quick`` scale preset: real learning dynamics at
reduced width/data, simulated clock at paper scale (see DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro.core import SoCFlow, SoCFlowOptions
from repro.distributed import build_strategy
from repro.harness import make_run_config

#: Table-3 method order (2D/HiPress/RING/PS share SSGD accuracy but have
#: distinct cost models, so each runs separately).
METHODS = ["ps", "ring", "hipress", "2d_paral", "fedavg", "t_fedavg",
           "socflow"]

PRESET = "quick"
EPOCHS = 4

#: epoch multiplier charged to a method that never reaches the common
#: accuracy target inside the budget ("did not converge", Table 3's "x")
NON_CONVERGED_PENALTY = 2.0


def convergence_adjusted_hours(result, target: float) -> float:
    """Simulated hours to first reach ``target`` accuracy.

    Methods that never reach it are charged the full run plus the
    non-convergence penalty — the deterministic stand-in for "needs more
    epochs" at quick scale.
    """
    reached = [i for i, acc in enumerate(result.accuracy_history, start=1)
               if acc >= target]
    epochs = reached[0] if reached else (result.epochs_run
                                         * NON_CONVERGED_PENALTY)
    return result.sim_time_hours * epochs / result.epochs_run


class SuiteRunner:
    """Lazily trains and caches (workload, method, socs) combinations."""

    def __init__(self):
        self._cache: dict[tuple, object] = {}

    def config(self, workload: str, num_socs: int = 32,
               max_epochs: int = EPOCHS, preset: str = PRESET, **kwargs):
        # the paper's configuration: 8 logical groups at 32 SoCs
        groups = max(2, num_socs // 4)
        return make_run_config(workload, preset, num_socs=num_socs,
                               num_groups=groups, max_epochs=max_epochs,
                               **kwargs)

    def run(self, workload: str, method: str, num_socs: int = 32,
            max_epochs: int = EPOCHS, preset: str = PRESET,
            **socflow_options):
        key = (workload, method, num_socs, max_epochs, preset,
               tuple(sorted(socflow_options.items())))
        if key not in self._cache:
            config = self.config(workload, num_socs, max_epochs, preset)
            if method == "socflow":
                strategy = SoCFlow(SoCFlowOptions(**socflow_options))
            else:
                strategy = build_strategy(method)
            self._cache[key] = strategy.train(config)
        return self._cache[key]


@pytest.fixture(scope="session")
def suite():
    return SuiteRunner()


def print_block(title: str, body: str) -> None:
    print(f"\n=== {title} ===\n{body}")
