"""Flat parameter buffer: pack/unpack round-trips and integrity."""

import pickle
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (FlatState, Linear, ReLU, Sequential, Tensor)
from repro.nn import functional as F
from repro.nn.flat import common_flat_layout
from repro.nn.models.registry import build_model


def small_model(seed=0):
    return build_model("lenet5", num_classes=10, in_channels=1,
                       image_size=28, seed=seed)


class TestRoundTrip:
    def test_flatten_preserves_values_bitwise(self):
        reference = small_model(seed=3)
        flattened = small_model(seed=3)
        flattened.flatten_parameters()
        ref_state = reference.state_dict()
        flat_state = flattened.state_dict()
        assert list(ref_state) == list(flat_state)
        for key in ref_state:
            assert np.array_equal(ref_state[key], flat_state[key]), key

    def test_state_dict_is_flat_state_snapshot(self):
        model = small_model()
        buf = model.flatten_parameters()
        state = model.state_dict()
        assert isinstance(state, FlatState)
        # snapshot is independent of further training
        before = state.flat.copy()
        buf.data += 1.0
        assert np.array_equal(state.flat, before)

    def test_load_flat_round_trip(self):
        model = small_model()
        buf = model.flatten_parameters()
        state = model.state_dict()
        buf.data[...] = 0.0
        buf.load_flat(state)
        assert np.array_equal(buf.data, state.flat)

    def test_flatten_idempotent(self):
        model = small_model()
        assert model.flatten_parameters() is model.flatten_parameters()

    def test_param_views_alias_flat_storage(self):
        model = small_model()
        buf = model.flatten_parameters()
        for param, view in zip(buf.param_tensors, buf.param_views):
            assert param.data.base is buf.data
            assert np.shares_memory(param.data, view)
        buf.data[...] = 7.0
        for param in buf.param_tensors:
            assert np.all(param.data == 7.0)

    @given(st.lists(st.tuples(st.integers(1, 5), st.integers(1, 5)),
                    min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_linear_stacks_round_trip(self, dims):
        rng = np.random.default_rng(0)
        layers = []
        for out_dim, in_dim in dims:
            layers += [Linear(in_dim, out_dim, rng), ReLU()]
        model = Sequential(*layers)
        for param in model.parameters():
            param.data[...] = rng.standard_normal(
                param.data.shape).astype(np.float32)
        expected = OrderedDict((k, v.copy())
                               for k, v in model.state_dict().items())
        model.flatten_parameters()
        state = model.state_dict()
        assert list(state) == list(expected)
        for key in expected:
            assert np.array_equal(state[key], expected[key]), key


class TestLayout:
    def test_layouts_interned_per_architecture(self):
        a = small_model(seed=0).flatten_parameters()
        b = small_model(seed=1).flatten_parameters()
        assert a.layout is b.layout

    def test_layout_pickle_preserves_identity(self):
        layout = small_model().flatten_parameters().layout
        assert pickle.loads(pickle.dumps(layout)) is layout

    def test_offsets_partition_storage(self):
        layout = small_model().flatten_parameters().layout
        assert layout.offsets[0] == 0
        assert layout.offsets[-1] == layout.total
        for a, b, size in zip(layout.offsets[:-1], layout.offsets[1:],
                              layout.sizes):
            assert b - a == size

    def test_size_mismatch_rejected(self):
        layout = small_model().flatten_parameters().layout
        with pytest.raises(ValueError, match="elements"):
            FlatState(layout, np.zeros(layout.total + 1, dtype=np.float32))


class TestFlatState:
    def test_pickle_round_trip(self):
        model = small_model()
        model.flatten_parameters()
        state = model.state_dict()
        clone = pickle.loads(pickle.dumps(state))
        assert isinstance(clone, FlatState)
        assert clone.layout is state.layout
        assert np.array_equal(clone.flat, state.flat)

    def test_reassignment_breaks_intactness(self):
        model = small_model()
        model.flatten_parameters()
        state = model.state_dict()
        assert state.is_intact()
        key = next(iter(state))
        state[key] = np.zeros_like(state[key])
        assert not state.is_intact()
        assert common_flat_layout([state]) is None

    def test_common_layout_requires_same_architecture(self):
        a = small_model()
        a.flatten_parameters()
        b = Sequential(Linear(2, 2, np.random.default_rng(0)))
        b.flatten_parameters()
        assert common_flat_layout([a.state_dict(), b.state_dict()]) is None
        assert common_flat_layout(
            [a.state_dict(), a.state_dict()]) is a.state_dict().layout


class TestGradients:
    def test_backward_lands_in_fused_grads(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 3, rng))
        buf = model.flatten_parameters()
        x = rng.standard_normal((2, 4)).astype(np.float32)
        model.train()
        for param in model.parameters():
            param.zero_grad()
        loss = F.cross_entropy(model(Tensor(x)), np.array([1, 2]))
        loss.backward()
        assert buf.grads_ready()
        for param in model.parameters():
            assert param.grad is not None
            assert param.grad.base is buf.grads
