"""Extension: SLO-aware training/serving co-scheduling (ext-8).

A 32-SoC server runs a request-level inference service (resnet18,
Figure-4a latency) against a diurnal arrival stream with an evening
flash crowd, while training tenants harvest whatever the service
leaves idle.  Two policies over the *identical* pre-generated request
realisation:

- **co-scheduled** — the serving plane autoscales on queue/SLO
  pressure, claiming idle SoCs first and preempting training (warm
  checkpoints) only when the idle pool runs dry; training grows back
  as load ebbs.
- **static** — the operator playbook: serving is permanently
  over-provisioned for the flash peak and training is gated to a fixed
  overnight window at its gang floor.

Expected outcome: the co-scheduler holds the p99 SLO (violations only
in the brief scale-up transient at flash onset, none sustained after
it settles) while finishing strictly more training epochs than the
static split.  Reruns are bit-identical.  When ``BENCH_SERVING_OUT``
is set the side-by-side report is written there as JSON (CI uploads it
as an artifact).
"""

import json
import os

from conftest import print_block

from repro.cluster import ClusterTopology
from repro.harness import format_table
from repro.jobs import TrainingJob
from repro.serving import (ArrivalProcess, FlashCrowd, Region,
                           ServiceModel, ServingCoScheduler, ServingPlane)

SOCS = 32
START_HOUR = 16.0           # afternoon shoulder through the night
HORIZON_HOURS = 14.0        # ends 06:00 next day
PEAK_RPS = 60.0
SLO_MS = 600.0
FLASH = FlashCrowd(start_hour=20.0, duration_hours=1.5, multiplier=4.0)
#: violation windows inside this many hours of flash onset are the
#: scale-up transient; any outside it count as *sustained* violations
ONSET_ALLOWANCE_HOURS = 0.5
STATIC_WINDOW = (22.0, 8.0)  # overnight 22:00-06:00, wraps midnight
#: static serving pool sized for the flash peak (240 rps / ~16.3 rps
#: per replica), held for the whole run
STATIC_REPLICAS = 15
REPORT_ENV = "BENCH_SERVING_OUT"

#: 40-epoch budgets exceed what the 8-hour static window can fit at the
#: gang floor (~32 epochs/job), so finished epochs separate the policies
JOBS = (
    TrainingJob(id="fmnist-nightly", workload="lenet5_fmnist", priority=2,
                min_socs=2, max_socs=12, epochs=40),
    TrainingJob(id="emnist-nightly", workload="lenet5_emnist", priority=1,
                min_socs=2, max_socs=12, epochs=40),
)


def make_arrivals() -> ArrivalProcess:
    return ArrivalProcess([Region("global", PEAK_RPS)],
                          start_hour=START_HOUR,
                          horizon_hours=HORIZON_HOURS,
                          flash_crowds=[FLASH], seed=0)


def make_service() -> ServiceModel:
    return ServiceModel.for_model("resnet18", max_batch=4)


def run_policy(coscheduled: bool, jobs=JOBS):
    topology = ClusterTopology(num_socs=SOCS)
    if coscheduled:
        plane = ServingPlane(make_arrivals(), make_service(),
                             slo_ms=SLO_MS, min_replicas=1)
        scheduler = ServingCoScheduler(topology, plane,
                                       start_hour=START_HOUR,
                                       horizon_hours=HORIZON_HOURS)
    else:
        plane = ServingPlane(make_arrivals(), make_service(),
                             slo_ms=SLO_MS, autoscale=False)
        # highest ids, mirroring where the autoscaler would claim
        plane.provision(list(range(SOCS - STATIC_REPLICAS, SOCS)),
                        START_HOUR)
        scheduler = ServingCoScheduler(topology, plane,
                                       start_hour=START_HOUR,
                                       horizon_hours=HORIZON_HOURS,
                                       elastic=False,
                                       window=STATIC_WINDOW)
    for job in jobs:
        scheduler.submit(job)
    return scheduler.run()


def violation_split(serving: dict):
    """(transient, sustained) violation-window counts.

    Window stats carry absolute simulated hours, so the transient band
    is simply ``[flash onset, onset + allowance)``.
    """
    transient = sustained = 0
    for w in serving["window_stats"]:
        if not w["violation"]:
            continue
        if FLASH.start_hour <= w["start_hour"] \
                < FLASH.start_hour + ONSET_ALLOWANCE_HOURS:
            transient += 1
        else:
            sustained += 1
    return transient, sustained


def comparison_report(co, static) -> dict:
    return {
        "socs": SOCS,
        "horizon_hours": HORIZON_HOURS,
        "slo_ms": SLO_MS,
        "flash_crowd": [FLASH.start_hour, FLASH.duration_hours,
                        FLASH.multiplier],
        "static_window": list(STATIC_WINDOW),
        "static_replicas": STATIC_REPLICAS,
        "coscheduled": co.to_dict(),
        "static": static.to_dict(),
        "epochs_gain": sum(r.epochs_done for r in co.jobs.values())
        - sum(r.epochs_done for r in static.jobs.values()),
    }


def test_coscheduler_holds_slo_and_beats_static_window(benchmark):
    def compute():
        return run_policy(coscheduled=True), run_policy(coscheduled=False)

    co, static = benchmark.pedantic(compute, rounds=1, iterations=1)
    co_serv = co.extra["serving"]
    st_serv = static.extra["serving"]

    rows = []
    for label, rep, serv in (("co-scheduled", co, co_serv),
                             ("static", static, st_serv)):
        rows.append([label,
                     sum(r.epochs_done for r in rep.jobs.values()),
                     serv["violation_windows"],
                     round(serv["max_p99_ms"], 1),
                     serv["max_replicas_seen"],
                     serv["dropped"],
                     round(serv["replica_soc_hours"], 1)])
    print_block("ext-8: co-scheduled vs static serving/training split",
                format_table(["policy", "epochs_done", "viol_windows",
                              "max_p99_ms", "max_replicas", "shed",
                              "serve_soc_h"], rows))
    transient, sustained = violation_split(co_serv)
    print_block("ext-8: co-scheduler SLO detail",
                f"requests={co_serv['requests']} "
                f"served={co_serv['served']} "
                f"transient_violations={transient} "
                f"sustained_violations={sustained} "
                f"scale_ups={co_serv['scale_ups']} "
                f"scale_downs={co_serv['scale_downs']} "
                f"preempted_socs={co_serv['preempted_socs']}")

    out = os.environ.get(REPORT_ENV)
    if out:
        with open(out, "w") as fh:
            json.dump(comparison_report(co, static), fh, indent=2,
                      sort_keys=True)

    # both policies saw the identical pre-generated realisation
    assert co_serv["requests"] == st_serv["requests"]

    # headline 1: the autoscaler holds the p99 SLO — any violations are
    # confined to the scale-up transient at flash onset, and none after
    # the plane settles
    transient, sustained = violation_split(co_serv)
    assert sustained == 0
    assert co_serv["violation_windows"] == transient
    # the flash actually stressed the plane (scale-ups happened and the
    # pool grew well past the trickle floor)
    assert co_serv["scale_ups"] > 0
    assert co_serv["max_replicas_seen"] >= 8
    assert co_serv["scale_downs"] > 0      # and released after the ebb

    # headline 2: co-scheduling beats the static overnight split on
    # training throughput (epochs finished inside the same horizon)
    co_epochs = sum(r.epochs_done for r in co.jobs.values())
    st_epochs = sum(r.epochs_done for r in static.jobs.values())
    assert co_epochs > st_epochs
    # nothing regressed to zero: the static baseline still trains
    assert st_epochs > 0


def test_corun_reruns_bit_identical(benchmark):
    # small budgets keep the double run cheap; the arrival stream, the
    # autoscaler, the preemptions and the training all still exercise
    small = tuple(
        TrainingJob(id=j.id, workload=j.workload, priority=j.priority,
                    min_socs=j.min_socs, max_socs=j.max_socs, epochs=6,
                    target_group_size=j.target_group_size)
        for j in JOBS)

    def compute():
        return (run_policy(coscheduled=True, jobs=small),
                run_policy(coscheduled=True, jobs=small))

    first, second = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert first.to_dict() == second.to_dict()
