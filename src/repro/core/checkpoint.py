"""Training-state checkpointing (the scheduler's preemption story).

SoCFlow checkpoints models on the SoCs' UFS storage so a user-load
surge can preempt training at any epoch and the job resumes in the next
idle window (§3).  :class:`TrainingCheckpoint` captures everything a
resume needs — model state, epoch cursor, accuracy history, controller
state — and round-trips through a single ``.npz`` file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["TrainingCheckpoint"]

_META_KEY = "__checkpoint_meta__"


@dataclass
class TrainingCheckpoint:
    """A resumable snapshot of one training job."""

    model_state: dict
    epoch: int
    accuracy_history: list = field(default_factory=list)
    alpha: float = 1.0
    rng_seed: int = 0
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the checkpoint as a compressed ``.npz`` archive."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "epoch": self.epoch,
            "accuracy_history": list(map(float, self.accuracy_history)),
            "alpha": float(self.alpha),
            "rng_seed": int(self.rng_seed),
            "meta": self.meta,
            "keys": list(self.model_state.keys()),
        }
        arrays = {f"tensor_{i}": np.asarray(value)
                  for i, value in enumerate(self.model_state.values())}
        arrays[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TrainingCheckpoint":
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no checkpoint at {path}")
        with np.load(path) as archive:
            if _META_KEY not in archive:
                raise ValueError(f"{path} is not a SoCFlow checkpoint")
            meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
            state = {key: archive[f"tensor_{i}"]
                     for i, key in enumerate(meta["keys"])}
        return cls(model_state=state, epoch=meta["epoch"],
                   accuracy_history=meta["accuracy_history"],
                   alpha=meta["alpha"], rng_seed=meta["rng_seed"],
                   meta=meta["meta"])

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """In-memory payload size (drives the UFS write-time estimate)."""
        return int(sum(np.asarray(v).nbytes
                       for v in self.model_state.values()))

    def write_seconds(self) -> float:
        """Estimated UFS write time on the SoC (see GlobalScheduler)."""
        from .scheduler import GlobalScheduler
        return GlobalScheduler.checkpoint_seconds(self.nbytes)
