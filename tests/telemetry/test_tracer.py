"""Tracer: span taxonomy, attribution, null default."""

import pytest

from repro.cluster import ClusterTopology
from repro.telemetry import SPAN_KINDS, NullTracer, Tracer


class TestTracer:
    def test_span_and_event_recorded_in_order(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 2.0, soc=3, lg=1, steps=10)
        tracer.event("fault", 2.0, name="fault:crash", soc=3)
        assert len(tracer) == 2
        first, second = tracer.records
        assert first.kind == "compute" and first.ph == "X"
        assert first.dur_s == 2.0 and first.lg == 1
        assert first.args == {"steps": 10}
        assert second.ph == "i" and second.dur_s == 0.0
        assert second.name == "fault:crash"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown span kind"):
            Tracer().span("teleport", 0.0, 1.0)
        assert "compute" in SPAN_KINDS and "nic_wait" in SPAN_KINDS

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Tracer().span("compute", 0.0, -0.5)

    def test_pcb_derived_from_topology(self):
        topo = ClusterTopology(num_socs=16)
        tracer = Tracer()
        tracer.bind_topology(topo)
        tracer.span("compute", 0.0, 1.0, soc=9)
        assert tracer.records[0].pcb == topo.pcb_of(9)

    def test_explicit_pcb_wins_over_topology(self):
        tracer = Tracer(topology=ClusterTopology(num_socs=16))
        tracer.span("nic_wait", 0.0, 1.0, soc=9, pcb=0)
        assert tracer.records[0].pcb == 0

    def test_to_dict_drops_missing_attribution(self):
        tracer = Tracer()
        tracer.span("recovery", 1.0, 3.0)
        out = tracer.records[0].to_dict()
        assert "soc" not in out and "pcb" not in out
        assert "lg" not in out and "cg" not in out and "args" not in out
        assert out["ts_s"] == 1.0 and out["dur_s"] == 3.0

    def test_default_name_is_kind(self):
        tracer = Tracer()
        tracer.span("allreduce", 0.0, 1.0, cg=2)
        assert tracer.records[0].name == "allreduce"


class TestNullTracer:
    def test_disabled_and_silent(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.bind_topology(ClusterTopology(num_socs=8))
        tracer.span("compute", 0.0, 1.0, soc=0)
        tracer.event("fault", 0.0)
        assert not hasattr(tracer, "records")
