"""Dataset registry: shapes mirror the real datasets they stand in for."""

import pytest

from repro.data import DATASET_REGISTRY, load_dataset


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(DATASET_REGISTRY) == {"cifar10", "emnist", "fmnist",
                                         "celeba", "cinic10"}

    def test_cifar10_spec_matches_real(self):
        spec = DATASET_REGISTRY["cifar10"]
        assert (spec.num_classes, spec.channels, spec.image_size) == (10, 3, 32)
        assert spec.train_size == 50_000

    def test_emnist_is_47_class_grayscale(self):
        spec = DATASET_REGISTRY["emnist"]
        assert spec.num_classes == 47
        assert spec.channels == 1
        assert spec.image_size == 28

    def test_celeba_binary(self):
        assert DATASET_REGISTRY["celeba"].num_classes == 2


class TestLoad:
    def test_scale_shrinks_counts(self):
        task = load_dataset("cifar10", scale=0.01, seed=0)
        assert len(task.x_train) == 500
        assert len(task.x_test) == 100

    def test_image_size_override(self):
        task = load_dataset("fmnist", scale=0.01, image_size=14, seed=0)
        assert task.x_train.shape[-1] == 14

    def test_minimum_sample_floor(self):
        task = load_dataset("emnist", scale=1e-6, seed=0)
        assert len(task.x_train) >= 47 * 4

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_nonpositive_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("cifar10", scale=0.0)

    def test_name_recorded(self):
        assert load_dataset("celeba", scale=0.001).name == "celeba"
