"""Global scheduler: the control-board software (§3, Figure 5a).

Responsibilities reproduced here:

- *dispatch*: model/data broadcast cost before training starts;
- *checkpointing*: models checkpoint to UFS so user workloads can
  preempt training at any time without losing progress;
- *preemption*: a sudden user-load event terminates whole logical
  groups (the flexible group structure means only those groups stop);
- *underclocking-aware rebalancing* (§4.1 optimisation 2): when DVFS
  slows a SoC, its group's batch shares are rebalanced so the slow chip
  stops being a straggler;
- *fault handling*: an attached :class:`~repro.cluster.faults.FaultSchedule`
  feeds unplanned faults (SoC crashes, NIC degradation, persistent
  stragglers, preemption storms) into the epoch loop; the scheduler
  tracks the dead set, pushes NIC multipliers into the network fabric,
  and prices the rollback/re-group recovery step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.faults import FaultSchedule, event_summary
from ..cluster.network import NetworkFabric
from ..cluster.topology import ClusterTopology
from ..telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["PreemptionEvent", "UnderclockEvent", "GlobalScheduler"]

#: sustained UFS 3.1 sequential write bandwidth, bytes/s
_UFS_WRITE_BPS = 500e6
#: sustained UFS 3.1 sequential read bandwidth, bytes/s (rollback restore)
_UFS_READ_BPS = 2e9
#: control-board overhead to detect a dead SoC and re-plan the groups
#: (health-check timeout + Eq. 1 / mapping / CG planning re-run)
_REPLAN_S = 0.5


@dataclass(frozen=True)
class PreemptionEvent:
    """User load returns at the start of ``epoch``: drop ``num_groups``."""

    epoch: int
    num_groups: int = 1


@dataclass(frozen=True)
class UnderclockEvent:
    """DVFS slows ``soc`` to ``factor`` of nominal speed from ``epoch``."""

    epoch: int
    soc: int
    factor: float

    def __post_init__(self):
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")


@dataclass
class GlobalScheduler:
    """Event bookkeeping + cost formulas for the control-board logic."""

    topology: ClusterTopology
    rebalance: bool = True
    events: list = field(default_factory=list)
    fault_schedule: FaultSchedule | None = None
    telemetry: Telemetry = field(default_factory=lambda: NULL_TELEMETRY)
    _clock_factors: dict[int, float] = field(default_factory=dict)

    # -- dispatch -------------------------------------------------------
    def dispatch_seconds(self, fabric: NetworkFabric, model_bytes: float,
                         data_bytes_per_soc: float,
                         socs: "list[int] | None" = None) -> float:
        """Broadcast the model and per-SoC data shards from the control
        board at the start of a job.

        ``socs`` restricts the broadcast to a job's allocated subset
        (multi-tenant schedules dispatch each admitted job only to the
        SoCs it was gang-placed on); the default is the whole cluster.
        """
        from ..cluster.network import CONTROL_BOARD
        if socs is None:
            socs = list(range(self.topology.num_socs))
        else:
            socs = sorted(socs)
        per_soc = model_bytes + data_bytes_per_soc
        return fabric.transfer_time(
            [_flow(CONTROL_BOARD, s, per_soc) for s in socs])

    # -- checkpoint / preemption ----------------------------------------
    @staticmethod
    def checkpoint_seconds(model_bytes: float) -> float:
        """Write one model checkpoint to the SoC's UFS storage."""
        return model_bytes / _UFS_WRITE_BPS

    def preemptions_at(self, epoch: int) -> list[PreemptionEvent]:
        """Planned preemptions at ``epoch``, plus any fault-schedule storms."""
        planned = [e for e in self.events
                   if isinstance(e, PreemptionEvent) and e.epoch == epoch]
        if self.fault_schedule is not None:
            planned.extend(PreemptionEvent(storm.epoch, storm.num_groups)
                           for storm in self.fault_schedule.storms_at(epoch))
        return planned

    # -- underclocking ----------------------------------------------------
    def apply_underclocks(self, epoch: int) -> None:
        """Apply every underclock that has begun by ``epoch``.

        Matching ``<= epoch`` (not ``== epoch``) keeps the schedule
        correct when a run resumes from a checkpoint *past* an event's
        epoch: the DVFS state is persistent, so an event that landed on
        or before the restored epoch must still be in force.
        """
        begun = sorted((e for e in self.events
                        if isinstance(e, UnderclockEvent)
                        and e.epoch <= epoch),
                       key=lambda e: e.epoch)
        for event in begun:
            self._clock_factors[event.soc] = event.factor

    def group_slowdown(self, group_socs: list[int]) -> float:
        """Wall-time multiplier for one group's compute.

        Without rebalancing the slowest member is a straggler
        (multiplier ``1/min_factor``); with rebalancing work moves to
        faster members and the multiplier is the harmonic-mean ratio
        ``G / sum(factors)``.
        """
        factors = [self._clock_factors.get(s, 1.0) for s in group_socs]
        if all(f == 1.0 for f in factors):
            return 1.0
        if self.rebalance:
            return len(factors) / sum(factors)
        return 1.0 / min(factors)

    # -- unplanned faults -------------------------------------------------
    def apply_faults(self, epoch: int,
                     fabric: NetworkFabric | None = None) -> set[int]:
        """Bring the fault state up to ``epoch``; return the dead set.

        Straggler factors fold into the same clock-factor table the
        underclock events use (both are persistent DVFS effects), and
        NIC multipliers are pushed into ``fabric`` so every subsequent
        transfer-time query sees the degraded links.
        """
        if self.fault_schedule is None:
            return set()
        for soc, factor in self.fault_schedule.straggler_factors(epoch).items():
            self._clock_factors[soc] = min(
                self._clock_factors.get(soc, 1.0), factor)
        if fabric is not None:
            fabric.apply_pcb_multipliers(
                self.fault_schedule.nic_multipliers(epoch))
        tel = self.telemetry
        if tel.tracer.enabled or tel.metrics.enabled:
            for event in self.fault_schedule.events_at(epoch):
                args = event_summary(event)
                kind = args.pop("fault")
                tel.tracer.event("fault", tel.now, name=f"fault:{kind}",
                                 soc=args.pop("soc", None),
                                 pcb=args.pop("pcb", None), fault=kind,
                                 **args)
                tel.metrics.counter("faults.injected", kind=kind).inc()
        return self.dead_socs_at(epoch)

    def dead_socs_at(self, epoch: int) -> set[int]:
        if self.fault_schedule is None:
            return set()
        return {s for s in self.fault_schedule.dead_socs(epoch)
                if 0 <= s < self.topology.num_socs}

    def alive_socs_at(self, epoch: int) -> list[int]:
        dead = self.dead_socs_at(epoch)
        return [s for s in range(self.topology.num_socs) if s not in dead]

    def recovery_seconds(self, model_bytes: float, fabric: NetworkFabric,
                         survivors: list[int]) -> float:
        """Price one rollback/re-group step after detecting dead SoCs.

        Survivors read the last checkpoint back from UFS (in parallel),
        the control board re-runs group sizing/mapping/CG planning, and
        one broadcast re-seeds any member whose checkpoint is stale.
        """
        read_s = model_bytes / _UFS_READ_BPS
        redispatch_s = 0.0
        if survivors:
            from ..cluster.network import CONTROL_BOARD
            redispatch_s = fabric.transfer_time(
                [_flow(CONTROL_BOARD, s, model_bytes) for s in survivors])
        return _REPLAN_S + read_s + redispatch_s


def _flow(src: int, dst: int, nbytes: float):
    from ..cluster.network import Flow
    return Flow(src, dst, nbytes)
