"""Hardware spec registry sanity."""

import pytest

from repro.cluster.spec import (GPU_REGISTRY, MODEL_PROFILES, SOC_REGISTRY,
                                model_profile)


class TestSocSpecs:
    def test_sd865_matches_figure2(self):
        soc = SOC_REGISTRY["sd865"]
        assert soc.dram_gb == 12
        assert soc.nic_bps == 1e9

    def test_npu_faster_than_cpu(self):
        for soc in SOC_REGISTRY.values():
            assert soc.npu.flops > soc.cpu.flops

    def test_npu_lower_power_than_cpu(self):
        for soc in SOC_REGISTRY.values():
            assert soc.npu.busy_watts < soc.cpu.busy_watts

    def test_8gen1_faster_than_865(self):
        assert (SOC_REGISTRY["sd8gen1"].npu.flops
                > SOC_REGISTRY["sd865"].npu.flops)

    def test_processor_accessor(self):
        soc = SOC_REGISTRY["sd865"]
        assert soc.processor("cpu") is soc.cpu
        assert soc.processor("npu") is soc.npu
        with pytest.raises(ValueError):
            soc.processor("gpu")


class TestModelProfiles:
    def test_all_paper_models_profiled(self):
        assert set(MODEL_PROFILES) == {"lenet5", "vgg11", "resnet18",
                                       "resnet50", "mobilenet_v1",
                                       "vit_tiny"}

    def test_payload_scales_with_precision(self):
        p = model_profile("vgg11")
        assert p.payload_bytes("fp32") == 4 * p.params
        assert p.payload_bytes("int8") == p.params
        assert p.payload_bytes("fp16") == 2 * p.params

    def test_measured_latency_ratio_matches_figure4a(self):
        """VGG-11: 29.1 h CPU vs ~7.5 h NPU -> ~3.9x speedup."""
        p = model_profile("vgg11")
        ratio = p.t_cpu_sample_s / p.t_npu_sample_s
        assert 3.0 <= ratio <= 5.0

    def test_resnet18_much_slower_than_vgg11(self):
        """Figure 4a: ResNet-18 takes ~8x longer end-to-end."""
        vgg = model_profile("vgg11")
        resnet = model_profile("resnet18")
        assert resnet.t_cpu_sample_s > 5 * vgg.t_cpu_sample_s

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            model_profile("bert")


class TestGpuSpecs:
    def test_v100_and_a100_present(self):
        assert {"v100", "a100"} <= set(GPU_REGISTRY)

    def test_a100_faster_than_v100(self):
        assert GPU_REGISTRY["a100"].flops > GPU_REGISTRY["v100"].flops
