"""Symmetric INT8 quantisation primitives.

All quantisers are symmetric around zero (the format mobile NPUs such
as the Hexagon DSP support natively) with a per-tensor scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantConfig", "quantize", "dequantize", "fake_quantize",
           "fake_quantize_segments", "quantization_error"]


@dataclass(frozen=True)
class QuantConfig:
    """Quantisation settings for the INT8 training path.

    Attributes
    ----------
    bits:
        Bit width (8 for the Hexagon NPU; other widths let the harness
        explore the future-work formats the paper's §5 mentions).
    stochastic_rounding:
        NITI-style stochastic rounding of gradients; reduces bias at the
        cost of variance.
    quantize_gradients / quantize_weights / quantize_activations:
        Which tensors are forced onto the integer grid each step.
    """

    bits: int = 8
    stochastic_rounding: bool = True
    quantize_gradients: bool = True
    quantize_weights: bool = True
    quantize_activations: bool = True
    #: use IEEE float16 instead of the integer grid — one of the newer
    #: NPU formats the paper's §5 anticipates (INT4/INT8/INT16/FP16)
    float16: bool = False

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    @property
    def format_name(self) -> str:
        return "fp16" if self.float16 else f"int{self.bits}"


def _scale_for(x: np.ndarray, qmax: int) -> float:
    peak = float(np.abs(x).max())
    if peak == 0.0:
        return 1.0
    return peak / qmax


def quantize(x: np.ndarray, scale: float, qmax: int,
             rng: np.random.Generator | None = None) -> np.ndarray:
    """Map ``x`` to integers in ``[-qmax, qmax]`` with the given scale."""
    scaled = x / scale
    if rng is not None:
        floor = np.floor(scaled)
        frac = scaled - floor
        scaled = floor + (rng.random(x.shape) < frac)
    else:
        scaled = np.rint(scaled)
    return np.clip(scaled, -qmax, qmax).astype(np.int32)


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    return (q * scale).astype(np.float32)


def fake_quantize(x: np.ndarray, config: QuantConfig,
                  rng: np.random.Generator | None = None,
                  scale: float | None = None) -> np.ndarray:
    """Round-trip ``x`` through the configured low-precision format."""
    if config.float16:
        return x.astype(np.float16).astype(np.float32)
    qmax = config.qmax
    if scale is None:
        scale = _scale_for(x, qmax)
    use_rng = rng if config.stochastic_rounding else None
    return dequantize(quantize(x, scale, qmax, rng=use_rng), scale)


def fake_quantize_segments(flat: np.ndarray, starts: np.ndarray,
                           sizes: np.ndarray, config: QuantConfig,
                           rng: np.random.Generator | None = None
                           ) -> np.ndarray:
    """Fused :func:`fake_quantize` over contiguous segments of one array.

    ``flat`` is a 1-D float32 array; segment ``i`` spans
    ``flat[starts[i]:starts[i]+sizes[i]]`` and gets its own per-tensor
    scale, exactly as if :func:`fake_quantize` had been called on each
    segment in order — bit for bit, including the stochastic-rounding
    random stream: one ``rng.random(flat.size)`` draw consumes the PCG64
    stream identically to per-segment draws.
    """
    if config.float16:
        return flat.astype(np.float16).astype(np.float32)
    qmax = config.qmax
    maxima = np.maximum.reduceat(np.abs(flat), starts)
    # Per-tensor path computes the scale as a float64 python scalar but
    # divides weak-typed, i.e. in float32; mirror both dtypes exactly.
    scales = np.where(maxima == 0.0, 1.0, maxima.astype(np.float64) / qmax)
    scaled = flat / np.repeat(scales.astype(np.float32), sizes)
    if rng is not None and config.stochastic_rounding:
        floor = np.floor(scaled)
        frac = scaled - floor
        scaled = floor + (rng.random(flat.size) < frac)
    else:
        scaled = np.rint(scaled)
    q = np.clip(scaled, -qmax, qmax).astype(np.int32)
    # Dequantise: int32 * float64 scale, then one cast to float32 — the
    # same promotion ``(q * scale).astype(float32)`` performs per tensor.
    return (q * np.repeat(scales, sizes)).astype(np.float32)


def quantization_error(x: np.ndarray, config: QuantConfig) -> float:
    """Relative L2 error introduced by one quantisation round trip."""
    norm = float(np.linalg.norm(x))
    if norm == 0.0:
        return 0.0
    return float(np.linalg.norm(fake_quantize(x, config) - x)) / norm
