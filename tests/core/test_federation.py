"""Multi-server LAN-WAN federation extension."""

from dataclasses import replace

import pytest

from repro.cluster import ClusterTopology, EdgeSite, WanFabric
from repro.core import CrossSiteConfig, CrossSiteSoCFlow


def two_sites(socs=16):
    return tuple(EdgeSite(f"site{i}", ClusterTopology(num_socs=socs))
                 for i in range(2))


class TestEdgeSite:
    def test_defaults(self):
        site = EdgeSite("berlin")
        assert site.topology.num_socs == 60
        assert site.wan_bps == 100e6

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeSite("x", wan_bps=0)


class TestWanFabric:
    def test_sync_time_scales_with_payload(self):
        fabric = WanFabric(list(two_sites()))
        assert fabric.sync_time(2e7) > fabric.sync_time(1e7)

    def test_slow_uplink_dominates(self):
        fast = EdgeSite("fast", wan_bps=1e9)
        slow = EdgeSite("slow", wan_bps=10e6)
        solo = WanFabric([fast]).sync_time(1e7)
        mixed = WanFabric([fast, slow]).sync_time(1e7)
        assert mixed > 5 * solo

    def test_wan_much_slower_than_lan(self):
        """The premise of delayed cross-site sync: WAN >> PCB NIC."""
        from repro.cluster import NetworkFabric
        site = EdgeSite("x", ClusterTopology(num_socs=10))
        lan = NetworkFabric(site.topology).ring_allreduce_time(
            list(range(10)), 1e7)
        wan = WanFabric([site, EdgeSite("y")]).sync_time(1e7)
        assert wan > lan

    def test_epoch_ratio(self):
        fabric = WanFabric(list(two_sites()))
        site = fabric.sites[0]
        tight = fabric.per_site_epoch_ratio(site, 100.0, 1e7,
                                            sync_every_epochs=1)
        relaxed = fabric.per_site_epoch_ratio(site, 100.0, 1e7,
                                              sync_every_epochs=10)
        assert tight > relaxed > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WanFabric([])
        with pytest.raises(ValueError):
            WanFabric([EdgeSite("a"), EdgeSite("a")])
        fabric = WanFabric(list(two_sites()))
        with pytest.raises(ValueError):
            fabric.sync_time(-1)
        with pytest.raises(ValueError):
            fabric.per_site_epoch_ratio(fabric.sites[0], 1.0, 1.0, 0)


class TestCrossSiteTraining:
    def test_runs_and_reports(self, quick_config):
        config = replace(quick_config, max_epochs=2,
                         topology=ClusterTopology(num_socs=16),
                         num_groups=4)
        federation = CrossSiteSoCFlow(CrossSiteConfig(
            sites=two_sites(), site_sync_every=1))
        result = federation.train(config)
        assert result.strategy == "cross_site_socflow"
        assert result.epochs_run == 2
        assert result.extra["num_sites"] == 2
        assert result.sim_time_s > 0
        assert result.energy.total_j > 0

    def test_wan_sync_charged(self, quick_config):
        config = replace(quick_config, max_epochs=2,
                         topology=ClusterTopology(num_socs=16),
                         num_groups=4)
        slow_sites = tuple(
            EdgeSite(f"s{i}", ClusterTopology(num_socs=16), wan_bps=5e6)
            for i in range(2))
        fast = CrossSiteSoCFlow(CrossSiteConfig(
            sites=two_sites(), site_sync_every=1)).train(config)
        slow = CrossSiteSoCFlow(CrossSiteConfig(
            sites=slow_sites, site_sync_every=1)).train(config)
        assert slow.sim_time_s > fast.sim_time_s

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CrossSiteConfig(sites=())
        with pytest.raises(ValueError):
            CrossSiteConfig(sites=two_sites(), site_sync_every=0)
