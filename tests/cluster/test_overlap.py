"""Comm/compute overlap: timeline semantics + cost-model guarantees.

Pins the three contracts the bucketed-fusion subsystem makes:

1. :func:`overlap_timeline` is the greedy single-NIC schedule (each
   collective starts at ``max(ready, previous end)``) and its visible
   time never exceeds the sequential sum of durations.
2. The cost model's bucketed sync is *never slower* than the sequential
   whole-model sync, and degrades to exact equality for one-bucket
   plans (the adaptive-fusion clamp).
3. The NIC byte accounting conserves payload: the per-bucket split must
   reproduce the whole-model load exactly, and the fabric raises on any
   drift.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterTopology, NetworkFabric
from repro.cluster.network import (STARTUP_BASE_S, STARTUP_PER_TENSOR_S,
                                   overlap_timeline)
from repro.cluster.spec import model_profile
from repro.distributed import RunConfig
from repro.distributed.base import OVERLAP_FRACTION, CostModel, make_model

MB = 1e6


def fabric(num_socs=32, **kwargs):
    return NetworkFabric(ClusterTopology(num_socs=num_socs), **kwargs)


# ----------------------------------------------------------------------
# overlap_timeline
# ----------------------------------------------------------------------
class TestOverlapTimeline:
    def test_greedy_serialisation(self):
        schedule, visible = overlap_timeline(
            5.0, [1.0, 2.0, 5.0], [2.0, 2.0, 1.0])
        assert schedule == [(1.0, 3.0), (3.0, 5.0), (5.0, 6.0)]
        assert visible == 1.0

    def test_full_hiding_is_zero_visible(self):
        _, visible = overlap_timeline(10.0, [1.0, 2.0], [1.0, 1.0])
        assert visible == 0.0

    def test_everything_ready_at_end_is_sequential(self):
        durations = [0.7, 0.3, 1.1]
        _, visible = overlap_timeline(4.0, [4.0] * 3, durations)
        assert visible == pytest.approx(sum(durations), rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            overlap_timeline(1.0, [0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            overlap_timeline(1.0, [-0.1], [1.0])
        with pytest.raises(ValueError):
            overlap_timeline(1.0, [0.0], [-1.0])

    @settings(max_examples=200, deadline=None)
    @given(compute=st.floats(0.1, 100.0),
           buckets=st.lists(st.tuples(st.floats(0.0, 1.0),
                                      st.floats(0.0, 10.0)),
                            min_size=1, max_size=12))
    def test_visible_never_exceeds_sequential(self, compute, buckets):
        """Overlap can only help: ready times inside the window mean the
        visible tail is at most the sum of durations (the sequential
        cost), and the schedule never overlaps itself on the NIC."""
        ready = [f * compute for f, _ in buckets]
        ready.sort()
        durations = [d for _, d in buckets]
        schedule, visible = overlap_timeline(compute, ready, durations)
        assert 0.0 <= visible <= sum(durations) + 1e-9
        for (_, end), (start, _) in zip(schedule, schedule[1:]):
            assert start >= end           # NIC runs one bucket at a time
        for (start, _), r in zip(schedule, ready):
            assert start >= r             # never before gradients exist


# ----------------------------------------------------------------------
# Fabric edge cases
# ----------------------------------------------------------------------
class TestRingEdgeCases:
    def test_single_soc_group_pays_one_startup_only(self):
        fab = fabric()
        payload = model_profile("vgg11").payload_bytes()
        assert fab.ring_allreduce_time([3], payload) == fab.startup_per_soc_s

    def test_zero_bytes_pays_startup_only(self):
        fab = fabric()
        socs = list(range(5))
        assert fab.ring_allreduce_time(socs, 0.0) == \
            fab.startup_per_soc_s * len(socs)

    def test_bucket_tensor_count_prices_startup_linearly(self):
        fab = fabric(num_tensors=30)
        socs = list(range(4))
        whole = fab.ring_allreduce_time(socs, 0.0, num_tensors=30.0)
        half = fab.ring_allreduce_time(socs, 0.0, num_tensors=15.0)
        # the baked-in per-SoC rate is matched exactly at the full count
        assert whole == fab.startup_per_soc_s * len(socs)
        assert half == (STARTUP_BASE_S + STARTUP_PER_TENSOR_S * 15.0) * 4
        assert half < whole


class TestNicConservation:
    def test_bucketed_split_reproduces_whole_model(self):
        fab = fabric()
        rings = [[0, 1, 8, 9], [2, 3, 10, 11]]
        payload = 96.8 * MB
        split = [payload * s for s in (0.5, 0.3, 0.2)]
        whole = fab.pcb_ring_bytes(rings, payload)
        bucketed = fab.bucketed_pcb_ring_bytes(rings, split,
                                               total_bytes=payload)
        assert set(bucketed) == set(whole)
        for pcb in whole:
            assert bucketed[pcb] == pytest.approx(whole[pcb], rel=1e-12)

    def test_payload_drift_raises(self):
        fab = fabric()
        rings = [[0, 1, 8, 9]]
        with pytest.raises(AssertionError, match="lost or duplicated"):
            fab.bucketed_pcb_ring_bytes(rings, [60 * MB, 60 * MB],
                                        total_bytes=100 * MB)

    def test_per_pcb_drift_raises(self, monkeypatch):
        """A (simulated) accounting bug that inflates one bucket's load
        trips the second conservation assertion even when the payload
        split itself sums correctly."""
        fab = fabric()
        rings = [[0, 1, 8, 9]]
        real = NetworkFabric.pcb_ring_bytes
        calls = {"n": 0}

        def buggy(self, rings_, nbytes):
            out = real(self, rings_, nbytes)
            calls["n"] += 1
            if calls["n"] == 1:          # double-count the first bucket
                out = {pcb: load * 2 for pcb, load in out.items()}
            return out

        monkeypatch.setattr(NetworkFabric, "pcb_ring_bytes", buggy)
        with pytest.raises(AssertionError, match="drifted"):
            fab.bucketed_pcb_ring_bytes(rings, [50 * MB, 50 * MB],
                                        total_bytes=100 * MB)


# ----------------------------------------------------------------------
# CostModel: bucketed sync never loses to sequential
# ----------------------------------------------------------------------
def layout_for(config):
    return make_model(config).flatten_parameters().layout


@pytest.fixture()
def fused_config(quick_config):
    return dataclasses.replace(quick_config, fusion_threshold_mb=4.0)


def test_bucket_plan_cache_and_gating(quick_config, fused_config):
    assert CostModel(quick_config).bucket_plan(
        layout_for(quick_config)) is None            # fusion off
    cost = CostModel(fused_config)
    assert cost.bucket_plan(None) is None
    layout = layout_for(fused_config)
    plan = cost.bucket_plan(layout)
    assert plan is not None and plan.num_buckets > 1
    assert cost.bucket_plan(layout) is plan          # cached by identity


@pytest.mark.parametrize("knobs", [dict(fusion_threshold_mb=25.0),
                                   dict(fusion_threshold_mb=4.0),
                                   dict(fusion_max_ops=1),
                                   dict(fusion_max_ops=4)])
def test_bucketed_sync_never_exceeds_sequential(quick_config, knobs):
    config = dataclasses.replace(quick_config, **knobs)
    cost = CostModel(config)
    plan = cost.bucket_plan(layout_for(config))
    compute_s = 40.0
    whole = cost.fabric.ring_allreduce_time(
        list(range(8)), cost.grad_bytes)
    bucket_times = [
        cost.fabric.ring_allreduce_time(list(range(8)), nbytes,
                                        num_tensors=tensors)
        for nbytes, tensors in zip(plan.sim_bytes(cost.grad_bytes),
                                   plan.sim_tensors(
                                       cost.profile.num_tensors))]
    baseline_hidden = min(whole, OVERLAP_FRACTION * compute_s)
    visible, hidden, schedule = cost.overlapped_sync(
        compute_s, plan, bucket_times, whole, baseline_hidden)
    sequential_visible = whole - baseline_hidden
    assert visible <= sequential_visible
    assert visible >= 0.0 and hidden >= 0.0
    assert len(schedule) == plan.num_buckets
    if plan.num_buckets == 1:
        # the adaptive clamp pins one-bucket plans to EXACT equality
        assert visible == sequential_visible
        assert hidden == baseline_hidden


def test_zero_contention_equality(quick_config):
    """With no compute window to hide under (compute_s == 0) every
    bucket is ready immediately but nothing can be hidden: the bucketed
    visible time equals the serialized whole-model sync exactly."""
    config = dataclasses.replace(quick_config, fusion_max_ops=1)
    cost = CostModel(config)
    plan = cost.bucket_plan(layout_for(config))
    bucket_times = [1.0] * plan.num_buckets
    whole = float(plan.num_buckets)
    visible, hidden, _ = cost.overlapped_sync(0.0, plan, bucket_times,
                                              whole, 0.0)
    assert visible == whole
    assert hidden == 0.0
