"""Integrity-greedy mapping: Theorems 1–2 as executable properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterTopology
from repro.core import (contention_degree, integrity_greedy_mapping,
                        naive_mapping, nic_conflict_count)


class TestBasics:
    def test_groups_partition_all_socs(self):
        topo = ClusterTopology(num_socs=32)
        mapping = integrity_greedy_mapping(topo, 8)
        members = sorted(s for g in mapping.groups for s in g)
        assert members == list(range(32))

    def test_group_sizes_balanced(self):
        topo = ClusterTopology(num_socs=32)
        mapping = integrity_greedy_mapping(topo, 8)
        sizes = [len(g) for g in mapping.groups]
        assert max(sizes) - min(sizes) <= 1

    def test_group_of(self):
        topo = ClusterTopology(num_socs=10)
        mapping = integrity_greedy_mapping(topo, 2)
        for g, socs in enumerate(mapping.groups):
            for s in socs:
                assert mapping.group_of(s) == g

    def test_invalid_group_count_raises(self):
        topo = ClusterTopology(num_socs=10)
        with pytest.raises(ValueError):
            integrity_greedy_mapping(topo, 0)
        with pytest.raises(ValueError):
            naive_mapping(topo, 11)


class TestPaperExample:
    """Figure 5c: 15 SoCs, PCBs of 5, logical groups of 3."""

    def test_whole_groups_fit_per_pcb(self):
        topo = ClusterTopology(num_socs=15, socs_per_pcb=5)
        mapping = integrity_greedy_mapping(topo, 5)
        # exactly three groups must be intact (one per PCB), two split
        assert len(mapping.split_groups) == 2
        assert mapping.conflict_count() <= 2

    def test_matches_naive_on_paper_example(self):
        # On Figure 5c's own instance both mappings reach the optimum C=2.
        topo = ClusterTopology(num_socs=15, socs_per_pcb=5)
        greedy = integrity_greedy_mapping(topo, 5)
        naive = naive_mapping(topo, 5)
        assert nic_conflict_count(greedy) <= nic_conflict_count(naive) == 2

    def test_strictly_beats_naive_when_whole_groups_fit(self):
        # 20 SoCs, 5 groups of 4: greedy keeps four groups intact and
        # spreads one across PCBs (C=1); naive splits three (C=2).
        topo = ClusterTopology(num_socs=20, socs_per_pcb=5)
        greedy = integrity_greedy_mapping(topo, 5)
        naive = naive_mapping(topo, 5)
        assert nic_conflict_count(greedy) < nic_conflict_count(naive)


class TestTheorems:
    @given(st.integers(6, 60), st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_theorem1_never_worse_than_naive(self, num_socs, num_groups):
        """Integrity-greedy minimises C, so it is <= naive's C."""
        num_groups = min(num_groups, num_socs)
        topo = ClusterTopology(num_socs=num_socs)
        greedy = integrity_greedy_mapping(topo, num_groups)
        naive = naive_mapping(topo, num_groups)
        assert nic_conflict_count(greedy) <= nic_conflict_count(naive)

    @given(st.integers(6, 60), st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_theorem2_contention_degree_at_most_two(self, num_socs,
                                                    num_groups):
        """Each logical group contends with <= 2 others for a NIC."""
        num_groups = min(num_groups, num_socs)
        topo = ClusterTopology(num_socs=num_socs)
        mapping = integrity_greedy_mapping(topo, num_groups)
        for g in range(mapping.num_groups):
            assert contention_degree(mapping, g) <= 2

    @given(st.integers(6, 60), st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exact_for_any_shape(self, num_socs, num_groups):
        num_groups = min(num_groups, num_socs)
        topo = ClusterTopology(num_socs=num_socs)
        for builder in (integrity_greedy_mapping, naive_mapping):
            mapping = builder(topo, num_groups)
            members = sorted(s for g in mapping.groups for s in g)
            assert members == list(range(num_socs))


class TestConflictAccounting:
    def test_intact_groups_never_conflict(self):
        topo = ClusterTopology(num_socs=20, socs_per_pcb=5)
        mapping = integrity_greedy_mapping(topo, 4)  # groups of 5 = PCB size
        assert mapping.split_groups == set()
        assert mapping.conflict_count() == 0
        assert contention_degree(mapping, 0) == 0

    def test_inter_pcb_groups_on(self):
        topo = ClusterTopology(num_socs=15, socs_per_pcb=5)
        mapping = naive_mapping(topo, 5)
        # group 1 = SoCs 3..5 spans PCB0/PCB1
        assert 1 in mapping.inter_pcb_groups_on(0)
        assert 1 in mapping.inter_pcb_groups_on(1)
