"""Fused (flat) aggregation must match per-key aggregation bit for bit.

The fused whole-model path and the per-key dict fallback of
``average_states``/``weighted_average_states`` funnel through one
elementwise kernel, so their outputs are identical to the last bit —
the invariant every strategy's exchange round relies on when mixing
flat and unflattened replicas.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.comm import average_states, weighted_average_states
from repro.nn.flat import common_flat_layout
from repro.nn.models.registry import build_model

MODELS = {
    "lenet5": dict(num_classes=10, in_channels=1, image_size=28),
    "vgg11": dict(num_classes=10, in_channels=3, image_size=32, width=0.25),
    "resnet18": dict(num_classes=10, in_channels=3, image_size=32,
                     width=0.25),
}


def replica_states(name, num=4, seed=0):
    """``num`` perturbed flat snapshots plus detached per-key copies."""
    model = build_model(name, seed=seed, **MODELS[name])
    model.flatten_parameters()
    rng = np.random.default_rng(seed + 1)
    flat_states, dict_states = [], []
    for _ in range(num):
        state = model.state_dict()
        state.flat += rng.standard_normal(
            state.flat.shape).astype(np.float32) * 0.01
        flat_states.append(state)
        dict_states.append(OrderedDict((k, v.copy())
                                       for k, v in state.items()))
    return flat_states, dict_states


def assert_bitwise_equal(a, b):
    assert list(a) == list(b)
    for key in a:
        assert np.array_equal(a[key], b[key], equal_nan=True), key


@pytest.mark.parametrize("name", sorted(MODELS))
def test_uniform_average_fused_equals_perkey(name):
    flat_states, dict_states = replica_states(name)
    assert common_flat_layout(flat_states) is not None  # fused path taken
    assert common_flat_layout(dict_states) is None      # per-key fallback
    assert_bitwise_equal(average_states(flat_states),
                         average_states(dict_states))


@pytest.mark.parametrize("name", sorted(MODELS))
def test_weighted_average_fused_equals_perkey(name):
    flat_states, dict_states = replica_states(name)
    weights = [0.3, 1.7, 0.5, 2.0]
    assert_bitwise_equal(weighted_average_states(flat_states, weights),
                         weighted_average_states(dict_states, weights))


def test_mixed_flat_and_dict_states_fall_back_consistently():
    flat_states, dict_states = replica_states("lenet5")
    mixed = [flat_states[0], dict_states[1], flat_states[2], dict_states[3]]
    assert common_flat_layout(mixed) is None
    assert_bitwise_equal(average_states(mixed), average_states(dict_states))


def test_desynchronised_flat_state_falls_back_bitwise():
    flat_states, dict_states = replica_states("lenet5")
    key = next(iter(flat_states[0]))
    flat_states[0][key] = flat_states[0][key].copy()  # detach one view
    assert common_flat_layout(flat_states) is None
    assert_bitwise_equal(average_states(flat_states),
                         average_states(dict_states))


def test_single_state_average_is_exact_identity():
    flat_states, _ = replica_states("lenet5", num=1)
    out = average_states(flat_states)
    assert_bitwise_equal(out, flat_states[0])


def test_fused_average_crosses_block_boundaries_consistently():
    # model larger than one kernel block: block boundaries must not
    # change any bit vs the (differently-blocked) per-key walk
    flat_states, dict_states = replica_states("vgg11", num=8)
    assert flat_states[0].flat.size > (1 << 16)
    assert_bitwise_equal(average_states(flat_states),
                         average_states(dict_states))


def test_merge_counters_identical_between_paths():
    from repro.telemetry import MetricsRegistry
    flat_states, dict_states = replica_states("lenet5")
    reg_fused, reg_perkey = MetricsRegistry(), MetricsRegistry()
    average_states(flat_states, metrics=reg_fused)
    average_states(dict_states, metrics=reg_perkey)
    assert reg_fused.to_jsonl() == reg_perkey.to_jsonl()
