#!/usr/bin/env python
"""Scenario: the paper's §5 outlook — a Transformer on the SoC-Cluster.

Newer NPUs (Snapdragon 8gen1/8gen2) support INT8 *and* FP16 and are up
to 18x faster, "opening up more opportunities for SoCFlow to train
relatively larger DNNs, including Transformers".  This example trains a
compact Vision Transformer with SoCFlow on a simulated 8gen1 cluster,
using the FP16 NPU format instead of INT8.

Run:  python examples/transformer_preview.py
"""

from dataclasses import replace

from repro.cluster import ClusterTopology
from repro.cluster.spec import SOC_REGISTRY
from repro.core import SoCFlow, SoCFlowOptions
from repro.data import load_dataset
from repro.distributed import RunConfig
from repro.quant import QuantConfig


def main() -> None:
    task = load_dataset("cifar10", scale=0.05, image_size=16, seed=0)

    # A 32-chip slice of an 8gen1-based cluster.
    topology = ClusterTopology(num_socs=32, soc=SOC_REGISTRY["sd8gen1"])
    config = RunConfig(
        task=task,
        model_name="vit_tiny",
        width=0.5,
        batch_size=16,
        lr=0.01,
        momentum=0.9,
        max_epochs=6,
        topology=topology,
        sim_samples_per_epoch=50_000,
        sim_global_batch=64,
        num_groups=8,
    )

    for label, quant in [("NPU format: FP16", QuantConfig(float16=True)),
                         ("NPU format: INT8", QuantConfig())]:
        result = SoCFlow(SoCFlowOptions(quant=quant)).train(config)
        print(f"=== ViT-tiny on 32x sd8gen1, {label} ===")
        print(f"accuracy per epoch : "
              f"{[f'{a:.2f}' for a in result.accuracy_history]}")
        print(f"simulated time     : {result.sim_time_hours:.3f} h, "
              f"energy {result.energy.total_kj:.0f} kJ")
        alphas = [round(a, 3) for a, _ in result.extra["alpha_history"]]
        print(f"alpha per epoch    : {alphas}\n")


if __name__ == "__main__":
    main()
