"""End-to-end determinism: same seed + same fault schedule must give
bit-identical weights and an identical simulated clock, even through
crash/rollback/re-group recovery."""

import numpy as np

from repro.cluster import (ClusterTopology, FaultInjector, FaultSchedule,
                          NicDegradation, SoCCrash)
from repro.core import SoCFlow, SoCFlowOptions
from repro.distributed import build_strategy
from repro.harness import make_run_config


def _schedule():
    return FaultSchedule((SoCCrash(1, 2), SoCCrash(1, 9),
                          NicDegradation(2, 0, 0.25, recover_epoch=3)))


def _run(seed=0, schedule=None, method="socflow"):
    config = make_run_config("vgg11", "quick", num_socs=16, num_groups=4,
                             max_epochs=3, seed=seed,
                             fault_schedule=schedule,
                             fault_mode="continue")
    if method == "socflow":
        return SoCFlow(SoCFlowOptions()).train(config)
    return build_strategy(method).train(config)


def _assert_identical(a, b):
    assert a.accuracy_history == b.accuracy_history
    assert a.sim_time_s == b.sim_time_s
    assert a.breakdown == b.breakdown
    state_a, state_b = a.extra["final_state"], b.extra["final_state"]
    assert set(state_a) == set(state_b)
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key


class TestSoCFlowDeterminism:
    def test_fault_free_runs_are_bit_identical(self):
        _assert_identical(_run(seed=3), _run(seed=3))

    def test_faulted_runs_are_bit_identical(self):
        a = _run(seed=3, schedule=_schedule())
        b = _run(seed=3, schedule=_schedule())
        assert a.extra["recoveries"] == b.extra["recoveries"]
        assert a.extra["network_retries"] == b.extra["network_retries"]
        _assert_identical(a, b)

    def test_injector_schedules_are_reproducible_end_to_end(self):
        topo = ClusterTopology(num_socs=16)
        runs = [
            _run(seed=5, schedule=FaultInjector(topo, seed=21).sample(
                3, num_crashes=2, num_flaps=1))
            for _ in range(2)
        ]
        _assert_identical(*runs)

    def test_different_seed_diverges(self):
        a, b = _run(seed=0), _run(seed=1)
        state_a, state_b = a.extra["final_state"], b.extra["final_state"]
        assert any(not np.array_equal(state_a[k], state_b[k])
                   for k in state_a)


class TestBaselineDeterminism:
    def test_ring_survivor_mode_is_bit_identical(self):
        a = _run(seed=2, schedule=_schedule(), method="ring")
        b = _run(seed=2, schedule=_schedule(), method="ring")
        assert a.accuracy_history == b.accuracy_history
        assert a.sim_time_s == b.sim_time_s
        state_a = a.extra.get("final_state")
        state_b = b.extra.get("final_state")
        if state_a is not None and state_b is not None:
            for key in state_a:
                assert np.array_equal(state_a[key], state_b[key]), key
