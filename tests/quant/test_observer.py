"""Range observer behaviour."""

import numpy as np
import pytest

from repro.quant import EmaObserver, MinMaxObserver


class TestMinMax:
    def test_default_scale_before_observation(self):
        assert MinMaxObserver(127).scale == 1.0

    def test_tracks_running_peak(self):
        obs = MinMaxObserver(127)
        obs.observe(np.array([0.5]))
        obs.observe(np.array([-2.0]))
        obs.observe(np.array([1.0]))
        assert obs.scale == pytest.approx(2.0 / 127)

    def test_never_shrinks(self):
        obs = MinMaxObserver(127)
        obs.observe(np.array([4.0]))
        obs.observe(np.array([0.1]))
        assert obs.scale == pytest.approx(4.0 / 127)


class TestEma:
    def test_first_observation_sets_scale(self):
        obs = EmaObserver(127, momentum=0.9)
        obs.observe(np.array([1.27]))
        assert obs.scale == pytest.approx(0.01)

    def test_ema_update(self):
        obs = EmaObserver(127, momentum=0.5)
        obs.observe(np.array([2.0]))
        obs.observe(np.array([4.0]))
        assert obs.scale == pytest.approx(3.0 / 127)

    def test_zero_signal_safe(self):
        obs = EmaObserver(127)
        obs.observe(np.zeros(4))
        assert obs.scale == 1.0

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            EmaObserver(127, momentum=1.0)
