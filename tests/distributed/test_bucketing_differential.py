"""Differential harness: bucketed fusion may only move the *clock*.

For every registered strategy (plus SoCFlow) and every bucket geometry
in the sweep — including the degenerate one-bucket plan and the
per-tensor ``max_ops=1`` plan — a fused run must produce

- bit-identical learning: the same accuracy history (weights feed the
  evaluator directly, so float-equal accuracy pins float-equal
  weights), and for SoCFlow the byte-identical final state;
- identical data-plane metrics: the same number of merges over the
  same merged bytes (the host aggregation work is resliced, never
  duplicated);
- a simulated wall clock that is never *slower* than the unbucketed
  run, with exact equality for the one-bucket plan (the adaptive
  clamp's degenerate case).

The same contract must hold with tracing on and under injected faults.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import (ClusterTopology, FaultSchedule, NicDegradation,
                          SoCCrash)
from repro.core import SoCFlow, SoCFlowOptions
from repro.distributed import STRATEGY_REGISTRY, RunConfig, build_strategy
from repro.telemetry import MetricsRegistry, Telemetry, Tracer

#: the bucket-geometry sweep: a threshold above the paper-scale payload
#: (one bucket == whole model), a mid-size threshold (a handful of
#: buckets) and the per-tensor extreme.
FUSION_SWEEP = {
    "one_bucket": dict(fusion_threshold_mb=1e6),
    "mb4": dict(fusion_threshold_mb=4.0),
    "ops1": dict(fusion_max_ops=1),
}

METHODS = sorted(STRATEGY_REGISTRY) + ["socflow"]

#: strategies whose cost model actually reads the fusion knobs; for the
#: rest (local / ssp / fedavg / t_fedavg: no per-step gradient
#: collective to bucket) fusion is a documented no-op and every run
#: below must be *exactly* identical, clock included.
FUSION_AWARE = {"ps", "ring", "hipress", "2d_paral", "socflow"}


def base_config(tiny_task, **overrides):
    kwargs = dict(
        task=tiny_task, model_name="vgg11", width=0.15, batch_size=16,
        lr=0.05, momentum=0.9, max_epochs=2, seed=0,
        topology=ClusterTopology(num_socs=16),
        sim_samples_per_epoch=50_000, sim_global_batch=64, num_groups=4)
    kwargs.update(overrides)
    return RunConfig(**kwargs)


def run(config, method):
    metrics = MetricsRegistry()
    config = dataclasses.replace(
        config, telemetry=Telemetry(metrics=metrics))
    if method == "socflow":
        result = SoCFlow(SoCFlowOptions()).train(config)
    else:
        result = build_strategy(method).train(config)
    return result, metrics


def data_plane(metrics):
    """comm.* counters: merges and merged bytes must be exact."""
    return {(r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in metrics.collect() if r["name"].startswith("comm.")}


def nic_bytes(metrics):
    return {tuple(sorted(r["labels"].items())): r["value"]
            for r in metrics.collect() if r["name"] == "nic.bytes"}


def assert_differential(ref, ref_metrics, fused, fused_metrics, *,
                        exact_clock):
    __tracer__ = "hide"
    assert fused.accuracy_history == ref.accuracy_history
    assert fused.epochs_run == ref.epochs_run
    assert data_plane(fused_metrics) == data_plane(ref_metrics)
    ref_nic, fused_nic = nic_bytes(ref_metrics), nic_bytes(fused_metrics)
    assert set(ref_nic) == set(fused_nic)
    for key in ref_nic:      # conservation-checked split: ~1 ulp of slack
        assert fused_nic[key] == pytest.approx(ref_nic[key], rel=1e-9)
    if "final_state" in ref.extra:
        a, b = ref.extra["final_state"], fused.extra["final_state"]
        assert list(a) == list(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), key
    if exact_clock:
        assert fused.sim_time_s == ref.sim_time_s
        assert fused.breakdown == ref.breakdown
    else:
        assert fused.sim_time_s <= ref.sim_time_s


@pytest.fixture(scope="module")
def references(tiny_task):
    """One unbucketed run per method, shared across the sweep."""
    return {method: run(base_config(tiny_task), method)
            for method in METHODS}


@pytest.mark.parametrize("sweep", sorted(FUSION_SWEEP))
@pytest.mark.parametrize("method", METHODS)
def test_bucketed_run_is_differentially_identical(references, tiny_task,
                                                  method, sweep):
    ref, ref_metrics = references[method]
    config = base_config(tiny_task, **FUSION_SWEEP[sweep])
    fused, fused_metrics = run(config, method)
    # the one-bucket plan must degrade to the sequential clock EXACTLY;
    # fusion-oblivious strategies must be exact under every geometry
    exact = sweep == "one_bucket" or method not in FUSION_AWARE
    assert_differential(ref, ref_metrics, fused, fused_metrics,
                        exact_clock=exact)
    if method in FUSION_AWARE and sweep != "one_bucket":
        # fusion always reports a hidden share even when the adaptive
        # clamp holds the clock at equality (vgg11's compute window is
        # too shallow to hide its sync; the strict win is pinned on a
        # compute-heavy workload below)
        assert fused.extra["sync_hidden_s"] > 0.0


@pytest.mark.parametrize("method", ["ring", "socflow"])
def test_tracing_does_not_perturb_fused_runs(references, tiny_task, method):
    """The tracer observes the overlap schedule without changing it, and
    fused runs emit per-bucket sync spans."""
    ref, ref_metrics = references[method]
    config = base_config(tiny_task, **FUSION_SWEEP["mb4"])
    traced_config = dataclasses.replace(
        config, telemetry=Telemetry(tracer=Tracer(),
                                    metrics=MetricsRegistry()))
    if method == "socflow":
        traced = SoCFlow(SoCFlowOptions()).train(traced_config)
    else:
        traced = build_strategy(method).train(traced_config)
    assert traced.accuracy_history == ref.accuracy_history
    assert traced.sim_time_s <= ref.sim_time_s
    untraced, untraced_metrics = run(config, method)
    assert traced.sim_time_s == untraced.sim_time_s
    assert traced.breakdown == untraced.breakdown
    spans = [r for r in traced_config.telemetry.tracer.records
             if r.name == "bucket_sync"]
    assert spans
    indices = {r.args["bucket"] for r in spans}
    assert len(indices) > 1                      # per-bucket attribution
    assert any(r.args.get("hidden_s", 0.0) > 0.0 for r in spans)


def test_compute_heavy_workload_strictly_wins(tiny_task):
    """ResNet-18 under PS: the compute window is deep and the incast
    sync long, so early buckets genuinely start while backward still
    runs — fusion must strictly beat the sequential clock here, not
    just tie it under the clamp."""
    base = base_config(tiny_task, model_name="resnet18", max_epochs=1)
    ref, ref_metrics = run(base, "ps")
    fused, fused_metrics = run(
        dataclasses.replace(base, fusion_threshold_mb=4.0), "ps")
    assert_differential(ref, ref_metrics, fused, fused_metrics,
                        exact_clock=False)
    assert fused.sim_time_s < ref.sim_time_s
    assert fused.extra["sync_hidden_s"] > ref.extra["sync_hidden_s"]


@pytest.mark.parametrize("sweep", ["mb4", "ops1"])
@pytest.mark.parametrize("method", ["ring", "hipress", "socflow"])
def test_fused_runs_survive_faults_identically(tiny_task, method, sweep):
    """Crash + NIC-flap schedules: the fused run recovers through the
    same path and still matches the unbucketed run bit for bit."""
    schedule = FaultSchedule((SoCCrash(1, 2),
                              NicDegradation(1, 0, 0.25, recover_epoch=2)))
    faulted = dict(fault_schedule=schedule, fault_mode="continue")
    ref, ref_metrics = run(base_config(tiny_task, **faulted), method)
    fused, fused_metrics = run(
        base_config(tiny_task, **faulted, **FUSION_SWEEP[sweep]), method)
    assert_differential(ref, ref_metrics, fused, fused_metrics,
                        exact_clock=False)
    assert fused.extra.get("aborted", False) is False
