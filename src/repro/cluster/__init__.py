"""SoC-Cluster hardware model (the paper's §2.1 server, simulated).

The real testbed is a 2U server with 60 Snapdragon 865 SoCs on 12 PCBs
(5 per PCB): each SoC reaches its PCB NIC at 1 Gbps, each PCB shares
one 1 Gbps NIC towards a 20 Gbps switch.  This package reproduces that
machine as a calibrated performance model:

- :mod:`spec` — processors, SoCs, GPUs, per-model compute profiles.
- :mod:`topology` — the PCB/SoC physical layout.
- :mod:`network` — link-level transfer times with NIC contention.
- :mod:`energy` — busy/idle power accounting.
- :mod:`trace` — diurnal (tidal) utilisation traces and idle windows.
- :mod:`clock` — simulated wall clock with per-phase accounting.
- :mod:`faults` — seeded unplanned-fault injection (crashes, NIC
  flaps, stragglers, preemption storms).
"""

from .spec import (GPU_REGISTRY, SOC_REGISTRY, GpuSpec, ModelProfile,
                   ProcessorSpec, SoCSpec, model_profile)
from .topology import ClusterTopology
from .network import Flow, NetworkFabric
from .faults import (FaultInjector, FaultSchedule, FaultSpecError,
                     NicDegradation, PreemptionStorm, SoCCrash,
                     StragglerFault, parse_fault_spec)
from .energy import EnergyModel, EnergyReport
from .trace import TidalTrace, IdleWindow
from .workload import (Session, SessionIndex, SessionSimulator,
                       derive_training_events)
from .multiserver import EdgeSite, WanFabric
from .clock import PhaseClock

__all__ = [
    "ProcessorSpec", "SoCSpec", "GpuSpec", "ModelProfile", "model_profile",
    "SOC_REGISTRY", "GPU_REGISTRY", "ClusterTopology", "NetworkFabric",
    "Flow", "EnergyModel", "EnergyReport", "TidalTrace", "IdleWindow",
    "Session", "SessionIndex", "SessionSimulator", "derive_training_events",
    "EdgeSite", "WanFabric",
    "PhaseClock",
    "FaultInjector", "FaultSchedule", "FaultSpecError", "NicDegradation",
    "PreemptionStorm", "SoCCrash", "StragglerFault", "parse_fault_spec",
]
