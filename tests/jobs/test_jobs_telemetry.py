"""Per-job attribution through the tracer and the Chrome-trace export."""

import json

from repro.telemetry import Telemetry, Tracer, to_chrome_trace

from .conftest import busy_all, make_job, make_scheduler


class TestTracerJobField:
    def test_span_carries_job_id(self):
        tracer = Tracer()
        tracer.span("job", 0.0, 5.0, job="tenant-1", name="tenant-1:epoch 0")
        record = tracer.records[0]
        assert record.job == "tenant-1"
        assert record.to_dict()["job"] == "tenant-1"

    def test_job_field_omitted_when_unset(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 1.0, soc=0)
        assert "job" not in tracer.records[0].to_dict()


class TestChromeExportJobRows:
    def test_jobs_get_their_own_process_and_threads(self):
        tracer = Tracer()
        tracer.span("queue", 0.0, 10.0, job="b-job", name="b-job:queued")
        tracer.span("job", 10.0, 60.0, job="b-job", name="b-job:epoch 0")
        tracer.span("job", 10.0, 45.0, job="a-job", name="a-job:epoch 0")
        events = to_chrome_trace(tracer)["traceEvents"]
        names = {(e["pid"], e.get("tid")): e["args"]["name"]
                 for e in events if e["ph"] == "M"
                 and e["name"] in ("process_name", "thread_name")}
        assert names[(1000, None)] == "jobs"
        tids = {e["args"]["name"]: e["tid"] for e in events
                if e["ph"] == "M" and e["name"] == "thread_name"
                and e["pid"] == 1000}
        # one row per job, first-seen order
        assert tids == {"b-job": 1, "a-job": 2}
        spans = [e for e in events if e["ph"] == "X" and e["pid"] == 1000]
        assert {e["args"]["job"] for e in spans} == {"a-job", "b-job"}
        # concurrent jobs render on distinct rows
        assert len({e["tid"] for e in spans}) == 2

    def test_soc_attributed_records_stay_on_cluster_rows(self):
        tracer = Tracer()
        tracer.span("compute", 0.0, 1.0, soc=3, pcb=0, job="j")
        events = to_chrome_trace(tracer)["traceEvents"]
        span = next(e for e in events if e["ph"] == "X")
        assert span["pid"] != 1000          # pcb attribution wins
        assert span["args"]["job"] == "j"   # but the label survives


class TestScheduledRunTrace:
    def test_concurrent_jobs_distinguishable_in_export(
            self, jobs_topology, config_factory):
        telemetry = Telemetry.active()
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   telemetry=telemetry)
        scheduler.submit(make_job("alpha", priority=1))
        scheduler.submit(make_job("beta", priority=2))
        scheduler.run()
        job_spans = [r for r in telemetry.tracer.records
                     if r.kind == "job"]
        assert {r.job for r in job_spans} == {"alpha", "beta"}
        assert all(r.name.startswith(f"{r.job}:epoch") for r in job_spans)
        payload = json.dumps(to_chrome_trace(telemetry.tracer))
        assert '"alpha"' in payload and '"beta"' in payload

    def test_preemption_and_resize_events_attributed(
            self, jobs_topology, config_factory):
        telemetry = Telemetry.active()
        sessions = busy_all(jobs_topology, 0.75, 1.0)
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   sessions=sessions, telemetry=telemetry)
        scheduler.submit(make_job("victim", epochs=5))
        scheduler.run()
        kinds = {r.kind for r in telemetry.tracer.records}
        assert "preemption" in kinds
        preempt = next(r for r in telemetry.tracer.records
                       if r.kind == "preemption")
        assert preempt.job == "victim"

    def test_metrics_carry_job_labels(self, jobs_topology, config_factory):
        telemetry = Telemetry.active()
        scheduler = make_scheduler(jobs_topology, config_factory,
                                   telemetry=telemetry)
        scheduler.submit(make_job("only"))
        scheduler.run()
        rows = [json.loads(line) for line in
                telemetry.metrics.to_jsonl().splitlines()]
        soc_hours = [r for r in rows if r["name"] == "jobs.soc_hours"]
        assert soc_hours and soc_hours[0]["labels"] == {"job": "only"}
        names = {r["name"] for r in rows}
        assert {"jobs.completed", "jobs.utilisation"} <= names
