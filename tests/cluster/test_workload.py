"""Session simulator and training-event derivation (Figure 1's loop)."""

import numpy as np
import pytest

from repro.cluster import (ClusterTopology, Session, SessionIndex,
                           SessionSimulator, TidalTrace,
                           derive_training_events)


def simulator(seed=0, socs=60):
    return SessionSimulator(ClusterTopology(num_socs=socs), seed=seed)


class TestSession:
    def test_end_hour(self):
        assert Session(0, 10.0, 0.5).end_hour == 10.5


class TestSimulation:
    def test_daytime_much_busier_than_night(self):
        sim = simulator()
        sessions = sim.simulate_day()
        _, busy = sim.busy_curve(sessions)
        hours = np.arange(0.0, 24.0, 0.25)
        day = busy[(hours >= 12) & (hours < 16)].mean()
        night = busy[(hours >= 3) & (hours < 7)].mean()
        assert day > 5 * max(night, 0.01)

    def test_sessions_assigned_to_valid_socs(self):
        sim = simulator(socs=10)
        for session in sim.simulate_day():
            assert 0 <= session.soc < 10
            assert session.duration_hours > 0

    def test_no_soc_runs_overlapping_sessions(self):
        sim = simulator(socs=10)
        sessions = sim.simulate_day()
        by_soc: dict[int, list[Session]] = {}
        for session in sessions:
            by_soc.setdefault(session.soc, []).append(session)
        for group in by_soc.values():
            group.sort(key=lambda s: s.start_hour)
            for a, b in zip(group, group[1:]):
                assert a.end_hour <= b.start_hour + 1e-9

    def test_deterministic(self):
        a = simulator(seed=3).simulate_day()
        b = simulator(seed=3).simulate_day()
        assert a == b

    def test_busy_socs_at(self):
        sessions = [Session(0, 1.0, 2.0), Session(1, 5.0, 1.0)]
        assert SessionSimulator.busy_socs_at(sessions, 2.0) == {0}
        assert SessionSimulator.busy_socs_at(sessions, 5.5) == {1}
        assert SessionSimulator.busy_socs_at(sessions, 10.0) == set()

    def test_busy_curve_mirrors_trace_shape(self):
        """The simulated curve correlates with the analytic trace."""
        sim = simulator()
        sessions = sim.simulate_day()
        hours, busy = sim.busy_curve(sessions)
        analytic = np.array([sim.trace.busy_ratio(h) for h in hours])
        assert np.corrcoef(busy, analytic)[0, 1] > 0.7


class TestEventDerivation:
    def test_quiet_overnight_window_has_no_preemptions(self):
        sessions = simulator().simulate_day()
        events = derive_training_events(sessions, window_start_hour=23.0,
                                        epoch_hours=0.5, max_epochs=8,
                                        socs_per_group=4, idle_socs=32)
        assert events == []

    def test_morning_overrun_triggers_preemptions(self):
        sessions = simulator().simulate_day()
        events = derive_training_events(sessions, window_start_hour=5.0,
                                        epoch_hours=0.5, max_epochs=12,
                                        socs_per_group=4, idle_socs=32)
        assert events
        assert all(e.num_groups >= 1 for e in events)
        # epochs strictly increase
        epochs = [e.epoch for e in events]
        assert epochs == sorted(epochs)

    def test_never_claims_more_groups_than_exist(self):
        sessions = simulator().simulate_day()
        events = derive_training_events(sessions, window_start_hour=5.0,
                                        epoch_hours=0.5, max_epochs=20,
                                        socs_per_group=4, idle_socs=16)
        assert sum(e.num_groups for e in events) <= 16 // 4

    def test_validation(self):
        with pytest.raises(ValueError):
            derive_training_events([], 0.0, 0.5, 4, 0, 16)
        with pytest.raises(ValueError):
            derive_training_events([], 0.0, 0.0, 4, 4, 16)
        with pytest.raises(ValueError):
            derive_training_events([], 0.0, 0.5, 4, 4, -1)

    def test_zero_idle_socs_plans_nothing(self):
        """A saturated window never plans a logical group (regression:
        the zero-idle case must not divide by zero or emit events)."""
        sessions = simulator().simulate_day()
        assert derive_training_events(sessions, window_start_hour=13.0,
                                      epoch_hours=0.5, max_epochs=8,
                                      socs_per_group=4, idle_socs=0) == []

    def test_idle_below_group_size_plans_nothing(self):
        sessions = simulator().simulate_day()
        assert derive_training_events(sessions, window_start_hour=13.0,
                                      epoch_hours=0.5, max_epochs=8,
                                      socs_per_group=4, idle_socs=3) == []


class TestDroppedSessions:
    def test_saturation_counts_drops(self):
        """Tiny server + daytime-sized load: overload is counted, never
        silent — arrivals either land as sessions or show up in the
        drop counter."""
        sim = SessionSimulator(ClusterTopology(num_socs=2),
                               peak_sessions_per_hour=120.0, seed=0)
        sessions = sim.simulate_day()
        assert sim.dropped_sessions > 0
        assert len(sessions) > 0

    def test_light_load_drops_nothing(self):
        sim = SessionSimulator(ClusterTopology(num_socs=60),
                               peak_sessions_per_hour=2.0,
                               mean_session_hours=0.1, seed=0)
        sim.simulate_day()
        assert sim.dropped_sessions == 0

    def test_counter_resets_per_day(self):
        sim = SessionSimulator(ClusterTopology(num_socs=2),
                               peak_sessions_per_hour=120.0, seed=0)
        sim.simulate_day()
        first = sim.dropped_sessions
        sim.simulate_day()
        # overwritten by the new day, not accumulated
        assert sim.dropped_sessions != first or first == 0

    def test_deterministic(self):
        def drops(seed):
            sim = SessionSimulator(ClusterTopology(num_socs=2),
                                   peak_sessions_per_hour=120.0,
                                   seed=seed)
            sim.simulate_day()
            return sim.dropped_sessions
        assert drops(7) == drops(7)


class TestSessionIndex:
    def test_matches_naive_scan(self):
        sessions = simulator(socs=20).simulate_day()
        index = SessionIndex(sessions)
        for hour in np.arange(0.0, 24.0, 0.5):
            naive = {s.soc for s in sessions
                     if s.start_hour <= hour < s.end_hour}
            assert index.busy_socs_at(hour) == naive
            assert index.busy_count_at(hour) == len(naive)

    def test_counts_at_vectorised(self):
        sessions = simulator(socs=20).simulate_day()
        index = SessionIndex(sessions)
        hours = np.arange(0.0, 24.0, 0.25)
        counts = index.counts_at(hours)
        assert counts.tolist() == [index.busy_count_at(h) for h in hours]

    def test_idle_complement(self):
        index = SessionIndex([Session(1, 1.0, 2.0), Session(3, 1.5, 1.0)])
        assert index.idle_socs_at(2.0, 4) == [0, 2]
        assert index.idle_socs_at(10.0, 4) == [0, 1, 2, 3]

    def test_boundary_semantics(self):
        # same half-open predicate as the original scan
        index = SessionIndex([Session(0, 1.0, 2.0)])
        assert index.busy_socs_at(1.0) == {0}
        assert index.busy_socs_at(3.0) == set()

    def test_empty(self):
        index = SessionIndex([])
        assert len(index) == 0
        assert index.busy_socs_at(5.0) == set()
        assert index.counts_at(np.array([1.0, 2.0])).tolist() == [0, 0]


class TestIdleSocsAt:
    def test_complement_of_busy(self):
        sim = simulator(socs=4)
        sessions = [Session(1, 1.0, 2.0), Session(3, 1.5, 1.0)]
        assert sim.idle_socs_at(sessions, 2.0) == [0, 2]
        assert sim.idle_socs_at(sessions, 10.0) == [0, 1, 2, 3]

    def test_empty_at_full_load(self):
        sim = simulator(socs=3)
        sessions = [Session(s, 0.0, 5.0) for s in range(3)]
        assert sim.idle_socs_at(sessions, 1.0) == []

    def test_events_feed_socflow(self, quick_config):
        """End to end: derived events drive a real training run."""
        from repro.core import SoCFlow, SoCFlowOptions
        sessions = simulator().simulate_day()
        events = derive_training_events(sessions, window_start_hour=5.0,
                                        epoch_hours=0.5,
                                        max_epochs=quick_config.max_epochs,
                                        socs_per_group=4, idle_socs=32)
        result = SoCFlow(SoCFlowOptions(events=tuple(events))).train(
            quick_config)
        assert result.epochs_run == quick_config.max_epochs
