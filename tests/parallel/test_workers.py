"""``--workers N`` must be bit-identical to sequential execution.

Logical groups are independent between sync points (DESIGN.md decision
2), so the parallel group-major schedule is a pure reordering of the
sequential step-major one.  These tests pin the strong form of that
claim: byte-identical final weights, metrics JSONL and simulated clock,
with and without a fault schedule, over shared-memory and pickle
transports.
"""

import numpy as np
import pytest

from repro.cluster.faults import FaultSchedule, NicDegradation, SoCCrash
from repro.core import SoCFlow, SoCFlowOptions
from repro.harness import make_run_config
from repro.telemetry import MetricsRegistry, Telemetry

#: ext-4-style schedule: a 4-crash burst on one SoC plus a degraded NIC
def headline_faults():
    return FaultSchedule(
        [SoCCrash(1, epoch) for epoch in (4, 5, 6, 7)] +
        [NicDegradation(2, pcb=2, multiplier=0.25, recover_epoch=3)])


def train(workers, precision="fp32", faults=False, epochs=2):
    telemetry = Telemetry(metrics=MetricsRegistry())
    config = make_run_config(
        "vgg11", "quick", num_socs=16, num_groups=4, max_epochs=epochs,
        workers=workers, telemetry=telemetry,
        fault_schedule=headline_faults() if faults else None)
    result = SoCFlow(SoCFlowOptions(precision=precision)).train(config)
    return result, telemetry.metrics.to_jsonl()


def assert_identical(res_a, metrics_a, res_b, metrics_b):
    state_a = res_a.extra["final_state"]
    state_b = res_b.extra["final_state"]
    assert list(state_a) == list(state_b)
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key
    assert res_a.accuracy_history == res_b.accuracy_history
    assert res_a.sim_time_s == res_b.sim_time_s
    assert metrics_a == metrics_b


def test_workers4_bit_identical_on_table3_workload():
    seq = train(workers=1)
    par = train(workers=4)
    assert_identical(*seq, *par)


def test_workers4_bit_identical_under_fault_schedule():
    seq = train(workers=1, precision="mixed", faults=True)
    par = train(workers=4, precision="mixed", faults=True)
    assert_identical(*seq, *par)


def test_workers2_pickle_transport_bit_identical(monkeypatch):
    # force the pickle fallback (hosts without POSIX shared memory)
    from repro.parallel import pool
    monkeypatch.setattr(pool, "_shared_memory", None)
    seq = train(workers=1)
    par = train(workers=2)
    assert_identical(*seq, *par)


def test_single_worker_executor_is_sequential():
    from repro.parallel import LgExecutor
    config = make_run_config("vgg11", "quick", num_socs=16, num_groups=4,
                             max_epochs=1, workers=1)
    executor = LgExecutor(config, quant=None, mixed=False, int8_only=False,
                          t_cpu=1.0, t_npu=0.5, workers=1)
    assert not executor.parallel
    executor.close()


def test_workers_validation():
    with pytest.raises(ValueError):
        make_run_config("vgg11", "quick", num_socs=16, num_groups=4,
                        max_epochs=1, workers=0)
