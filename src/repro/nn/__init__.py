"""Pure-numpy DNN training framework (autograd, layers, optimisers).

This substitutes for the MNN CPU backend the paper builds on: the same
algorithms (SGD over conv nets) with identical learning dynamics, minus
the ARM kernels.
"""

from . import functional, init, models
from .flat import FlatLayout, FlatParamBuffer, FlatState
from .modules import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Dropout,
                      Flatten, GlobalAvgPool2d, Identity, Linear, MaxPool2d,
                      Module, ReLU, Sequential)
from .optim import SGD, ConstantLR, CosineAnnealingLR, StepLR
from .tensor import Tensor, no_grad

__all__ = [
    "Tensor", "no_grad", "functional", "init", "models",
    "Module", "Sequential", "Linear", "Conv2d", "BatchNorm1d", "BatchNorm2d",
    "ReLU", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout",
    "Identity",
    "SGD", "StepLR", "CosineAnnealingLR", "ConstantLR",
    "FlatLayout", "FlatParamBuffer", "FlatState",
]
