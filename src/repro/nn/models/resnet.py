"""ResNet-18 and ResNet-50 (He et al.) in CIFAR form (3x3 stem)."""

from __future__ import annotations

import numpy as np

from ..modules import (BatchNorm2d, Conv2d, GlobalAvgPool2d, Identity,
                       Linear, Module, ReLU, Sequential)
from ..tensor import Tensor


def _scaled(channels: int, width: float) -> int:
    return max(1, int(round(channels * width)))


class BasicBlock(Module):
    """Two 3x3 convolutions with an identity / projection shortcut."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, rng, stride=stride,
                            padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, padding=1,
                            bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, rng, stride=stride,
                       bias=False),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class Bottleneck(Module):
    """1x1 -> 3x3 -> 1x1 bottleneck used by ResNet-50."""

    expansion = 4

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        expanded = out_channels * self.expansion
        self.conv1 = Conv2d(in_channels, out_channels, 1, rng, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, stride=stride,
                            padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        self.conv3 = Conv2d(out_channels, expanded, 1, rng, bias=False)
        self.bn3 = BatchNorm2d(expanded)
        if stride != 1 or in_channels != expanded:
            self.shortcut = Sequential(
                Conv2d(in_channels, expanded, 1, rng, stride=stride,
                       bias=False),
                BatchNorm2d(expanded),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        return (out + self.shortcut(x)).relu()


class _ResNet(Module):
    def __init__(self, block_cls, blocks_per_stage: list[int],
                 num_classes: int, in_channels: int, width: float, seed: int):
        super().__init__()
        rng = np.random.default_rng(seed)
        base = _scaled(64, width)
        self.stem = Sequential(
            Conv2d(in_channels, base, 3, rng, padding=1, bias=False),
            BatchNorm2d(base),
            ReLU(),
        )
        stages: list[Module] = []
        channels = base
        for stage_index, num_blocks in enumerate(blocks_per_stage):
            out = _scaled(64 * 2 ** stage_index, width)
            stride = 1 if stage_index == 0 else 2
            for block_index in range(num_blocks):
                block = block_cls(channels, out,
                                  stride if block_index == 0 else 1, rng)
                stages.append(block)
                channels = out * block_cls.expansion
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.stages(x)
        x = self.pool(x)
        return self.fc(x)


class ResNet18(_ResNet):
    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 image_size: int = 32, width: float = 1.0, seed: int = 0):
        del image_size  # fully convolutional; accepted for API uniformity
        super().__init__(BasicBlock, [2, 2, 2, 2], num_classes, in_channels,
                         width, seed)


class ResNet50(_ResNet):
    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 image_size: int = 32, width: float = 1.0, seed: int = 0):
        del image_size
        super().__init__(Bottleneck, [3, 4, 6, 3], num_classes, in_channels,
                         width, seed)

    def freeze_backbone(self) -> None:
        """Transfer-learning mode (paper: CINIC-10 -> CIFAR-10 finetune).

        Only the final classifier keeps ``requires_grad``; the backbone is
        treated as a pre-trained feature extractor.
        """
        for _, param in self.stem.named_parameters():
            param.requires_grad = False
        for _, param in self.stages.named_parameters():
            param.requires_grad = False
