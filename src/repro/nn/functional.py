"""Neural-network ops with hand-written, vectorised backward passes.

Convolution uses im2col/col2im so that both directions reduce to one
large matrix multiply — the only way a pure-numpy CNN stays fast enough
to train inside the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear", "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "batch_norm", "log_softmax", "softmax", "cross_entropy", "dropout",
    "im2col", "col2im", "clear_workspaces",
]

# ---------------------------------------------------------------------------
# Workspace buffers
#
# The conv/pool hot path allocates the same large scratch arrays every
# step (im2col columns, col2im outputs, gradient columns).  A small
# keyed cache reuses them across steps.  Only arrays whose lifetime ends
# within the op that requested them may come from here — anything a
# backward closure captures (e.g. the forward im2col columns of conv2d)
# must stay freshly allocated, because a later layer with the same shape
# would overwrite it.
# ---------------------------------------------------------------------------

_WORKSPACES: dict[tuple, np.ndarray] = {}
_WORKSPACE_LIMIT = 64


def _workspace(tag: str, shape: tuple[int, ...], dtype=np.float32,
               zero: bool = False) -> np.ndarray:
    key = (tag, shape, np.dtype(dtype))
    buf = _WORKSPACES.get(key)
    if buf is None:
        if len(_WORKSPACES) >= _WORKSPACE_LIMIT:
            _WORKSPACES.clear()
        buf = np.empty(shape, dtype=dtype)
        _WORKSPACES[key] = buf
        if zero:
            buf[...] = 0
    elif zero:
        buf[...] = 0
    return buf


def clear_workspaces() -> None:
    """Drop all cached scratch buffers (frees memory; safe any time)."""
    _WORKSPACES.clear()


def im2col(x: np.ndarray, kernel: int, stride: int,
           out: np.ndarray | None = None) -> np.ndarray:
    """Unfold NCHW ``x`` into ``(N, C*k*k, L)`` patch columns.

    ``x`` must already be padded.  Uses stride tricks: no data copy
    until the final reshape.  ``out``, when given, must be a contiguous
    ``(N, C*k*k, L)`` array that receives the columns (reusing a
    workspace instead of allocating).
    """
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    if out is None:
        return windows.reshape(n, c * kernel * kernel, out_h * out_w)
    np.copyto(out.reshape(n, c, kernel, kernel, out_h, out_w), windows)
    return out


def col2im(cols: np.ndarray, x_shape: tuple[int, ...], kernel: int,
           stride: int, out: np.ndarray | None = None) -> np.ndarray:
    """Fold ``(N, C*k*k, L)`` columns back into NCHW, summing overlaps.

    Non-overlapping strides take copy-only fast paths (no zero-init, no
    accumulation); the generic overlapping case accumulates per kernel
    offset.  ``out``, when given, is used as the (fully overwritten)
    result buffer.
    """
    n, c, h, w = x_shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    if (stride == kernel and h == out_h * kernel and w == out_w * kernel):
        # Exact tiling (the pooling case): pure scatter-free transpose.
        x = np.empty(x_shape, dtype=cols.dtype) if out is None else out
        np.copyto(x.reshape(n, c, out_h, kernel, out_w, kernel),
                  cols.transpose(0, 1, 4, 2, 5, 3))
        return x
    if stride >= kernel:
        # Disjoint windows with possible gaps: assign, don't accumulate.
        x = np.zeros(x_shape, dtype=cols.dtype) if out is None \
            else _zeroed(out)
        for ki in range(kernel):
            h_end = ki + stride * out_h
            for kj in range(kernel):
                w_end = kj + stride * out_w
                x[:, :, ki:h_end:stride, kj:w_end:stride] = cols[:, :, ki, kj]
        return x
    x = np.zeros(x_shape, dtype=cols.dtype) if out is None else _zeroed(out)
    for ki in range(kernel):
        h_end = ki + stride * out_h
        for kj in range(kernel):
            w_end = kj + stride * out_w
            x[:, :, ki:h_end:stride, kj:w_end:stride] += cols[:, :, ki, kj]
    return x


def _zeroed(arr: np.ndarray) -> np.ndarray:
    arr[...] = 0
    return arr


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with ``weight`` shaped (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` is shaped ``(out_channels, in_channels // groups, k, k)``.
    ``groups=in_channels`` gives the depthwise convolution MobileNet needs.
    """
    if padding:
        x = x.pad2d(padding)
    n, c, h, w = x.shape
    out_c, in_c_per_group, kernel, _ = weight.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    if groups == 1:
        # The forward columns are captured by the backward closure, so
        # they must NOT come from the reusable workspace (a same-shape
        # sibling layer would overwrite them before backward runs).
        cols = im2col(x.data, kernel, stride)              # (N, C*k*k, L)
        w_mat = weight.data.reshape(out_c, -1)              # (O, C*k*k)
        out_data = np.matmul(w_mat[None, :, :], cols)
        out_data = out_data.reshape(n, out_c, out_h, out_w)

        def backward(grad: np.ndarray) -> None:
            grad_mat = grad.reshape(n, out_c, -1)           # (N, O, L)
            if weight.requires_grad:
                grad_w = np.einsum("nol,nkl->ok", grad_mat, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_cols = np.matmul(
                    w_mat.T[None, :, :], grad_mat,
                    out=_workspace("conv_gcols", cols.shape, grad_mat.dtype))
                grad_x = col2im(grad_cols, x.shape, kernel, stride,
                                out=_workspace("conv_gx", x.shape,
                                               grad_cols.dtype))
                x._accumulate(grad_x)

        out = Tensor._make(out_data, (x, weight), backward, op="conv2d",
                           ctx={"kernel": kernel, "stride": stride,
                                "groups": 1})
    else:
        # Grouped/depthwise: run each group through the same im2col path.
        group_in = c // groups
        group_out = out_c // groups
        cols = im2col(x.data, kernel, stride)
        cols = cols.reshape(n, groups, group_in * kernel * kernel, -1)
        w_mat = weight.data.reshape(groups, group_out, -1)
        # einsum's optimized path returns a transposed-layout view; write
        # into a C-contiguous buffer so downstream reductions (batch-norm
        # mean/var) see a canonical layout.
        out_data = np.einsum(
            "gok,ngkl->ngol", w_mat, cols, optimize=True,
            out=np.empty((n, groups, group_out, cols.shape[-1]),
                         dtype=np.float32))
        out_data = out_data.reshape(n, out_c, out_h, out_w)

        def backward(grad: np.ndarray) -> None:
            grad_mat = grad.reshape(n, groups, group_out, -1)
            if weight.requires_grad:
                grad_w = np.einsum("ngol,ngkl->gok", grad_mat, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_cols = np.einsum("gok,ngol->ngkl", w_mat, grad_mat,
                                      optimize=True)
                grad_cols = grad_cols.reshape(n, c * kernel * kernel, -1)
                x._accumulate(col2im(grad_cols, x.shape, kernel, stride))

        out = Tensor._make(out_data, (x, weight), backward, op="conv2d",
                           ctx={"kernel": kernel, "stride": stride,
                                "groups": groups})

    if bias is not None:
        out = out + bias.reshape(1, out_c, 1, 1)
    return out


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    # Neither the columns nor the gradient columns outlive this op, so
    # both come from reusable workspaces (no per-step allocation).
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride,
                  out=_workspace("pool_cols",
                                 (n * c, kernel * kernel, out_h * out_w),
                                 x.data.dtype))
    arg = cols.argmax(axis=1)                               # (N*C, L)
    out_data = np.take_along_axis(cols, arg[:, None, :], axis=1)
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        grad_cols = _workspace("pool_gcols",
                               (n * c, kernel * kernel, out_h * out_w),
                               np.float32, zero=True)
        np.put_along_axis(grad_cols, arg[:, None, :],
                          grad.reshape(n * c, 1, -1), axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, stride,
                        out=_workspace("pool_gx", (n * c, 1, h, w),
                                       np.float32))
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward, op="max_pool2d",
                        ctx={"kernel": kernel, "stride": stride})


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride,
                  out=_workspace("pool_cols",
                                 (n * c, kernel * kernel, out_h * out_w),
                                 x.data.dtype))
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        grad_cols = _workspace("pool_gcols",
                               (n * c, kernel * kernel, out_h * out_w),
                               np.float32)
        np.multiply(grad.reshape(n * c, 1, -1), scale, out=grad_cols)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, stride,
                        out=_workspace("pool_gx", (n * c, 1, h, w),
                                       np.float32))
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward, op="avg_pool2d",
                        ctx={"kernel": kernel, "stride": stride})


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over H and W, returning (N, C)."""
    return x.mean(axis=(2, 3))


def batch_norm(x: Tensor, weight: Tensor, bias: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalisation over the channel axis of NC or NCHW input.

    Mutates ``running_mean``/``running_var`` in place during training, as
    torch does; they are plain numpy buffers owned by the module.
    """
    axes = (0,) if x.ndim == 2 else (0, 2, 3)
    shape = (1, -1) if x.ndim == 2 else (1, -1, 1, 1)

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        running_var *= (1.0 - momentum)
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out_data = x_hat * weight.data.reshape(shape) + bias.data.reshape(shape)

    count = x.data.size // x.shape[1 if x.ndim > 1 else 0]

    def backward(grad: np.ndarray) -> None:
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=axes))
        if weight.requires_grad:
            weight._accumulate((grad * x_hat).sum(axis=axes))
        if x.requires_grad:
            g = grad * weight.data.reshape(shape)
            if training:
                grad_sum = g.sum(axis=axes, keepdims=True)
                grad_dot = (g * x_hat).sum(axis=axes, keepdims=True)
                grad_x = (g - grad_sum / count
                          - x_hat * grad_dot / count) * inv_std.reshape(shape)
            else:
                grad_x = g * inv_std.reshape(shape)
            x._accumulate(grad_x.astype(np.float32))

    return Tensor._make(out_data, (x, weight, bias), backward,
                        op="batch_norm",
                        ctx={"running_mean": running_mean,
                             "running_var": running_var,
                             "training": training, "momentum": momentum,
                             "eps": eps})


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward, op="log_softmax",
                        ctx={"axis": axis})


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and int targets (N,).

    Fused into a single graph node: the composed
    ``log_softmax -> gather -> mean -> neg`` chain funnels its backward
    through an ``np.add.at`` scatter, which dominates the loss hot path;
    since the gather indices are unique, the same gradient is a direct
    assignment.  Forward and backward reproduce the composed chain's
    arithmetic operation-for-operation, so values are unchanged.
    """
    targets = np.asarray(targets)
    n = logits.shape[0]
    rows = np.arange(n)

    shifted = logits.data - logits.data.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    soft = np.exp(log_probs)
    picked = log_probs[rows, targets]
    inv_n = np.float32(1.0 / float(n))
    loss = -(picked.sum() * inv_n)

    def backward(grad: np.ndarray) -> None:
        upstream = (-grad) * inv_n           # d loss / d picked[i]
        g = np.zeros_like(soft)
        g[rows, targets] = upstream
        g -= soft * upstream
        logits._accumulate(g)

    return Tensor._make(np.asarray(loss, dtype=np.float32), (logits,),
                        backward, op="cross_entropy",
                        ctx={"targets": targets})


def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator) -> Tensor:
    """Inverted dropout as a single graph node.

    One ``rng.random`` draw per call keeps the generator stream aligned
    with the historical ``x * Tensor(mask)`` form, and the forward/
    backward arithmetic is operation-for-operation identical to it, so
    values are unchanged.  Being one node (instead of a mul against an
    anonymous constant tensor) is what lets the graph executor replay
    dropout by re-drawing the mask from the captured generator.
    """
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward, op="dropout",
                        ctx={"p": p, "rng": rng})
