"""Quantisation primitive properties (deterministic + hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import (QuantConfig, dequantize, fake_quantize, quantize,
                         quantization_error)


class TestConfig:
    def test_qmax_for_8_bits(self):
        assert QuantConfig(bits=8).qmax == 127

    def test_qmax_for_4_bits(self):
        assert QuantConfig(bits=4).qmax == 7

    def test_frozen(self):
        with pytest.raises(Exception):
            QuantConfig().bits = 4


class TestQuantizeDequantize:
    def test_grid_values_exact(self):
        x = np.array([0.0, 0.5, -0.5, 1.0], dtype=np.float32)
        q = quantize(x, scale=1.0 / 127, qmax=127)
        np.testing.assert_array_equal(q, [0, 64, -64, 127])

    def test_clipping_to_qmax(self):
        x = np.array([10.0], dtype=np.float32)
        q = quantize(x, scale=0.01, qmax=127)
        assert q[0] == 127

    def test_dequantize_inverse_on_grid(self):
        q = np.array([-127, 0, 64], dtype=np.int32)
        x = dequantize(q, scale=0.02)
        np.testing.assert_allclose(x, [-2.54, 0.0, 1.28], rtol=1e-6)

    def test_zero_tensor_stable(self):
        x = np.zeros((5,), dtype=np.float32)
        cfg = QuantConfig(stochastic_rounding=False)
        np.testing.assert_array_equal(fake_quantize(x, cfg), x)

    @given(st.integers(0, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_error_bounded_by_half_step(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(64).astype(np.float32)
        cfg = QuantConfig(stochastic_rounding=False)
        out = fake_quantize(x, cfg)
        step = np.abs(x).max() / cfg.qmax
        assert np.abs(out - x).max() <= 0.5 * step + 1e-7

    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32).astype(np.float32)
        cfg = QuantConfig(stochastic_rounding=False)
        once = fake_quantize(x, cfg)
        twice = fake_quantize(once, cfg)
        np.testing.assert_allclose(once, twice, atol=1e-6)


class TestStochasticRounding:
    def test_unbiased_in_expectation(self):
        rng = np.random.default_rng(0)
        x = np.full(200_000, 0.3 * 0.02, dtype=np.float32)  # 0.3 of a step
        q = quantize(x, scale=0.02, qmax=127, rng=rng)
        assert q.mean() == pytest.approx(0.3, abs=0.01)

    def test_exact_values_not_perturbed(self):
        rng = np.random.default_rng(0)
        x = np.array([0.04, -0.02, 0.0], dtype=np.float32)
        q = quantize(x, scale=0.02, qmax=127, rng=rng)
        np.testing.assert_array_equal(q, [2, -1, 0])


class TestFp16Format:
    def test_fp16_roundtrip(self):
        x = np.array([1.0, 0.333333, 1e-5], dtype=np.float32)
        out = fake_quantize(x, QuantConfig(float16=True))
        np.testing.assert_allclose(
            out, x.astype(np.float16).astype(np.float32))

    def test_fp16_error_below_int8(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(1000).astype(np.float32)
        fp16_err = quantization_error(x, QuantConfig(float16=True))
        int8_err = quantization_error(
            x, QuantConfig(stochastic_rounding=False))
        assert fp16_err < int8_err

    def test_format_name(self):
        assert QuantConfig().format_name == "int8"
        assert QuantConfig(bits=4).format_name == "int4"
        assert QuantConfig(float16=True).format_name == "fp16"

    def test_ste_cast_fp16_gradient_identity(self):
        from repro.nn import Tensor
        from repro.quant import ste_cast_fp16
        x = Tensor(np.array([0.1, 0.2], dtype=np.float32),
                   requires_grad=True)
        ste_cast_fp16(x).backward(np.array([3.0, 4.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [3.0, 4.0])


class TestQuantizationError:
    def test_zero_for_zero_tensor(self):
        assert quantization_error(np.zeros(4, np.float32),
                                  QuantConfig()) == 0.0

    def test_small_relative_error_for_8_bits(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(1000).astype(np.float32)
        err = quantization_error(x, QuantConfig(stochastic_rounding=False))
        assert err < 0.02

    def test_fewer_bits_more_error(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(1000).astype(np.float32)
        err8 = quantization_error(x, QuantConfig(bits=8,
                                                 stochastic_rounding=False))
        err4 = quantization_error(x, QuantConfig(bits=4,
                                                 stochastic_rounding=False))
        assert err4 > 5 * err8
