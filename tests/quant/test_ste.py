"""Straight-through-estimator quantisation op."""

import numpy as np

from repro.nn import Tensor
from repro.nn.models import VGG11
from repro.quant import (QuantConfig, attach_activation_quant,
                         detach_activation_quant, ste_quantize)


class TestSteQuantize:
    def test_forward_snaps_to_grid(self):
        x = Tensor(np.array([0.013], dtype=np.float32), requires_grad=True)
        out = ste_quantize(x, scale=0.01, qmax=127)
        np.testing.assert_allclose(out.numpy(), [0.01], atol=1e-7)

    def test_backward_is_identity(self):
        x = Tensor(np.array([0.013, -0.5], dtype=np.float32),
                   requires_grad=True)
        out = ste_quantize(x, scale=0.01, qmax=127)
        out.backward(np.array([2.0, 3.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0, 3.0])

    def test_clips_to_range(self):
        x = Tensor(np.array([100.0], dtype=np.float32))
        out = ste_quantize(x, scale=0.01, qmax=127)
        np.testing.assert_allclose(out.numpy(), [1.27], rtol=1e-6)


class TestAttachDetach:
    def test_attach_counts_conv_and_linear(self):
        model = VGG11(num_classes=4, image_size=12, width=0.2, seed=0)
        count = attach_activation_quant(model, QuantConfig())
        # VGG-11 has 8 convs + 1 linear classifier
        assert count == 9

    def test_detach_removes_hooks(self):
        from repro.nn.modules import Conv2d, Linear
        model = VGG11(num_classes=4, image_size=12, width=0.2, seed=0)
        attach_activation_quant(model, QuantConfig())
        detach_activation_quant(model)
        assert all(m.output_quant is None for m in model.modules()
                   if isinstance(m, (Conv2d, Linear)))

    def test_quantized_forward_changes_output_slightly(self):
        x = Tensor(np.random.default_rng(0).standard_normal(
            (2, 3, 12, 12)).astype(np.float32))
        model = VGG11(num_classes=4, image_size=12, width=0.2, seed=0)
        model.eval()
        clean = model(x).numpy().copy()
        attach_activation_quant(model, QuantConfig())
        quantized = model(x).numpy()
        assert not np.allclose(clean, quantized)
        # but not wildly different
        assert np.abs(clean - quantized).max() < 1.0
