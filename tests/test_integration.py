"""Cross-module integration: the paper's headline claims, end to end.

These run the full pipeline (harness -> strategies -> cost model) at the
quick scale and assert the *shape* of the paper's results: who wins, in
what order, with sane breakdowns.
"""

from dataclasses import replace

import pytest

from repro.core import SoCFlow, SoCFlowOptions
from repro.distributed import build_strategy
from repro.harness import make_run_config


@pytest.fixture(scope="module")
def showdown():
    """SoCFlow vs the key baselines on the same quick workload."""
    config = make_run_config("vgg11", "quick", num_socs=32, num_groups=8,
                             max_epochs=3)
    results = {name: build_strategy(name).train(config)
               for name in ["ps", "ring", "hipress", "2d_paral", "fedavg"]}
    results["socflow"] = SoCFlow().train(config)
    return config, results


class TestHeadlineClaims:
    def test_socflow_fastest_per_epoch(self, showdown):
        """Figure 8: SoCFlow beats every baseline's wall time."""
        _, results = showdown
        socflow = results["socflow"].sim_time_s
        for name in ["ps", "ring", "hipress", "2d_paral"]:
            assert socflow < results[name].sim_time_s, name

    def test_speedup_vs_ring_at_least_5x(self, showdown):
        """Paper: 14.8-143x vs RING; our per-epoch model must show a
        large factor too."""
        _, results = showdown
        ratio = results["ring"].sim_time_s / results["socflow"].sim_time_s
        assert ratio > 5

    def test_speedup_vs_ps_larger_than_vs_ring(self, showdown):
        _, results = showdown
        socflow = results["socflow"].sim_time_s
        assert (results["ps"].sim_time_s / socflow
                > results["ring"].sim_time_s / socflow)

    def test_socflow_energy_below_dml_baselines(self, showdown):
        """Figure 9."""
        _, results = showdown
        for name in ["ps", "ring", "2d_paral"]:
            assert (results["socflow"].energy.total_j
                    < results[name].energy.total_j), name

    def test_all_strategies_trained_for_real(self, showdown):
        config, results = showdown
        chance = 1.0 / config.task.num_classes
        for name, result in results.items():
            assert result.best_accuracy >= chance * 0.8, name

    def test_breakdown_ordering_fig12(self, showdown):
        """RING sync share > SoCFlow sync share > FedAvg sync share."""
        _, results = showdown
        ring = results["ring"].phase_shares()["sync"]
        ours = results["socflow"].phase_shares()["sync"]
        fed = results["fedavg"].phase_shares()["sync"]
        assert ring > ours > fed


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        config = make_run_config("lenet5_fmnist", "quick", num_socs=16,
                                 num_groups=4, max_epochs=2)
        a = SoCFlow().train(config)
        b = SoCFlow().train(replace(config))
        assert a.accuracy_history == b.accuracy_history
        assert a.energy.total_j == b.energy.total_j


class TestScalabilityShape:
    def test_more_socs_less_time_for_socflow(self):
        """Figure 10: SoCFlow scales with the SoC count."""
        times = {}
        for socs, groups in [(8, 2), (32, 8)]:
            config = make_run_config("vgg11", "quick", num_socs=socs,
                                     num_groups=groups, max_epochs=2)
            times[socs] = SoCFlow().train(config).sim_time_s
        assert times[32] < times[8]

    def test_ring_scales_poorly(self):
        """Observation #2: RING gains little from 8 -> 32 SoCs."""
        times = {}
        for socs in (8, 32):
            config = make_run_config("vgg11", "quick", num_socs=socs,
                                     max_epochs=2)
            times[socs] = build_strategy("ring").train(config).sim_time_s
        socflow_gain = None  # documented in the scalability bench
        assert times[32] > 0.5 * times[8]  # nowhere near 4x speedup
